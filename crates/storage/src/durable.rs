//! Durable storage: checkpointed snapshots + WAL segments + crash recovery.
//!
//! On-disk layout of a durable database directory:
//!
//! ```text
//! <dir>/
//!   wal/
//!     000000.log      # records logged before the first checkpoint
//!     000001.log      # records logged after snapshot 000001, …
//!   snapshots/
//!     000001/
//!       MANIFEST      # file list + sizes + CRC32s, self-checksummed
//!       t0.ktbl …     # every catalog table, KTBL v2 (checksum trailer)
//!       functions.json
//! ```
//!
//! Checkpoint `N` writes the whole in-memory state into a temp directory,
//! fsyncs it, renames it to `snapshots/N` (atomic), then rotates the log to
//! segment `N`. The previous snapshot and its segment are kept, so a
//! corrupt newest snapshot still recovers from `N-1` plus segments
//! `N-1` and `N`. Recovery loads the newest snapshot whose manifest and
//! tables all verify, then replays every segment from that epoch onward —
//! tolerating (not erroring on) a torn final record, which a live process
//! could never have applied.

use crate::persist::{decode_table, encode_table};
use crate::wal::{crc32, Wal, WalRecord};
use crate::{StorageError, Table};
use std::path::{Path, PathBuf};

const MANIFEST_MAGIC: &str = "KSNAP 1";

/// What [`Durability::open`] reconstructed from disk.
#[derive(Debug)]
pub struct Recovered {
    /// Tables of the newest valid snapshot (empty for a fresh directory).
    pub tables: Vec<Table>,
    /// The function-registry payload persisted with that snapshot.
    pub functions_json: Option<String>,
    /// WAL records logged after the snapshot, in commit order. The caller
    /// applies them on top of `tables` (the storage layer keeps the apply
    /// semantics with the SQL layer that produced the records).
    pub wal_records: Vec<WalRecord>,
    /// Epoch of the snapshot that was loaded (0 = started empty).
    pub snapshot_epoch: u64,
}

/// Point-in-time status of a durable directory, for the REPL's `\wal`.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityStatus {
    /// The database directory.
    pub dir: PathBuf,
    /// Newest snapshot epoch (0 before the first checkpoint).
    pub snapshot_epoch: u64,
    /// Complete records in the active segment (replayed + appended).
    pub wal_records: u64,
    /// Valid bytes in the active segment.
    pub wal_bytes: u64,
}

/// The durability coordinator: owns the active WAL segment and writes
/// checkpoints. One instance per open database directory.
#[derive(Debug)]
pub struct Durability {
    dir: PathBuf,
    /// Newest snapshot epoch == index of the active WAL segment.
    epoch: u64,
    wal: Wal,
}

fn epoch_name(e: u64) -> String {
    format!("{e:06}")
}

fn segment_path(dir: &Path, e: u64) -> PathBuf {
    dir.join("wal").join(format!("{}.log", epoch_name(e)))
}

fn snapshot_dir(dir: &Path, e: u64) -> PathBuf {
    dir.join("snapshots").join(epoch_name(e))
}

/// Numeric entries (dirs or `.log` files) under `path`, ascending.
fn list_epochs(path: &Path, strip_log: bool) -> Result<Vec<u64>, StorageError> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(path) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        let stem = if strip_log {
            match name.strip_suffix(".log") {
                Some(s) => s,
                None => continue,
            }
        } else {
            name.as_ref()
        };
        if let Ok(e) = stem.parse::<u64>() {
            out.push(e);
        }
    }
    out.sort_unstable();
    Ok(out)
}

impl Durability {
    /// Opens a durable directory, creating it if absent, and recovers:
    /// newest valid snapshot + replay of every WAL segment from that epoch
    /// onward. Falls back to the previous retained snapshot (or, before
    /// any pruning, to the empty epoch-0 state) when the newest snapshot
    /// fails verification; errors with [`StorageError::Corrupt`] only when
    /// no retained state verifies.
    pub fn open(dir: &Path) -> Result<(Self, Recovered), StorageError> {
        std::fs::create_dir_all(dir.join("wal"))?;
        std::fs::create_dir_all(dir.join("snapshots"))?;
        // Clear interrupted checkpoint attempts.
        for entry in std::fs::read_dir(dir.join("snapshots"))? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().starts_with(".tmp-") {
                let _ = std::fs::remove_dir_all(entry.path());
            }
        }

        let snaps = list_epochs(&dir.join("snapshots"), false)?;
        let segments = list_epochs(&dir.join("wal"), true)?;
        let max_epoch = snaps
            .iter()
            .chain(segments.iter())
            .copied()
            .max()
            .unwrap_or(0);

        // Candidate start states, newest first; epoch 0 (empty) is only
        // reachable while segment 0 is still retained or nothing exists.
        let mut candidates: Vec<u64> = snaps.iter().rev().copied().collect();
        if snaps.is_empty() || segments.first() == Some(&0) {
            candidates.push(0);
        }

        let mut first_error: Option<StorageError> = None;
        for candidate in candidates {
            // Every rotated-out segment in [candidate, max_epoch) must be
            // present — a pruned segment means this start state can no
            // longer reach the present.
            let chain_ok = (candidate..max_epoch).all(|e| segments.binary_search(&e).is_ok());
            if !chain_ok {
                continue;
            }
            let loaded = if candidate == 0 {
                Ok((Vec::new(), None))
            } else {
                load_snapshot(&snapshot_dir(dir, candidate))
            };
            let (tables, functions_json) = match loaded {
                Ok(state) => state,
                Err(e) => {
                    first_error.get_or_insert(e);
                    continue;
                }
            };
            let mut wal_records = Vec::new();
            let mut replay_ok = true;
            for e in candidate..max_epoch {
                match Wal::replay_file(&segment_path(dir, e)) {
                    Ok(records) => wal_records.extend(records),
                    Err(err) => {
                        first_error.get_or_insert(err);
                        replay_ok = false;
                        break;
                    }
                }
            }
            if !replay_ok {
                continue;
            }
            // The active segment: replay and truncate any torn tail.
            let (wal, tail) = Wal::open(&segment_path(dir, max_epoch))?;
            wal_records.extend(tail);
            return Ok((
                Self {
                    dir: dir.to_path_buf(),
                    epoch: max_epoch,
                    wal,
                },
                Recovered {
                    tables,
                    functions_json,
                    wal_records,
                    snapshot_epoch: candidate,
                },
            ));
        }
        Err(first_error.unwrap_or_else(|| {
            StorageError::Corrupt("no recoverable snapshot or wal state".to_string())
        }))
    }

    /// Appends one record to the active segment and fsyncs it. Call this
    /// *before* applying the mutation in memory (write-ahead).
    pub fn log(&mut self, record: &WalRecord) -> Result<(), StorageError> {
        self.wal.append(record)
    }

    /// Writes a checkpoint: every table plus the function-registry payload
    /// into a fresh snapshot epoch (temp dir + fsync + atomic rename), then
    /// rotates the WAL to a new segment and prunes state older than the
    /// previous epoch. Returns the new epoch.
    pub fn checkpoint(
        &mut self,
        tables: &[&Table],
        functions_json: Option<&str>,
    ) -> Result<u64, StorageError> {
        let next = self.epoch + 1;
        let snapshots = self.dir.join("snapshots");
        let tmp = snapshots.join(format!(".tmp-{}", epoch_name(next)));
        let _ = std::fs::remove_dir_all(&tmp);
        std::fs::create_dir_all(&tmp)?;

        let mut manifest = format!("{MANIFEST_MAGIC}\nepoch {next}\n");
        for (i, table) in tables.iter().enumerate() {
            let file = format!("t{i}.ktbl");
            let bytes = encode_table(table)?;
            write_synced(&tmp.join(&file), &bytes)?;
            manifest.push_str(&format!("table {file} {} {}\n", bytes.len(), crc32(&bytes)));
        }
        if let Some(json) = functions_json {
            let bytes = json.as_bytes();
            write_synced(&tmp.join("functions.json"), bytes)?;
            manifest.push_str(&format!(
                "functions functions.json {} {}\n",
                bytes.len(),
                crc32(bytes)
            ));
        }
        manifest.push_str(&format!("crc {}\n", crc32(manifest.as_bytes())));
        write_synced(&tmp.join("MANIFEST"), manifest.as_bytes())?;
        let _ = std::fs::File::open(&tmp).and_then(|d| d.sync_all());
        std::fs::rename(&tmp, snapshot_dir(&self.dir, next))?;
        let _ = std::fs::File::open(&snapshots).and_then(|d| d.sync_all());

        // Rotate the log: subsequent records belong to the new epoch.
        let (wal, _) = Wal::open(&segment_path(&self.dir, next))?;
        self.wal = wal;
        self.epoch = next;

        // Prune: keep this snapshot and the previous one (plus the WAL
        // segments needed to roll either forward to the present).
        for e in list_epochs(&snapshots, false)? {
            if e + 2 <= next {
                let _ = std::fs::remove_dir_all(snapshot_dir(&self.dir, e));
            }
        }
        for e in list_epochs(&self.dir.join("wal"), true)? {
            if e + 2 <= next {
                let _ = std::fs::remove_file(segment_path(&self.dir, e));
            }
        }
        Ok(next)
    }

    /// Records appended through this handle since open or the last
    /// checkpoint (replayed tail records are not counted: they are already
    /// durable and re-replayable, so a session that only read needs no
    /// closing snapshot).
    pub fn appended_records(&self) -> u64 {
        self.wal.appended()
    }

    /// Current status (snapshot epoch, active-segment records/bytes).
    pub fn status(&self) -> DurabilityStatus {
        DurabilityStatus {
            dir: self.dir.clone(),
            snapshot_epoch: self.epoch,
            wal_records: self.wal.records(),
            wal_bytes: self.wal.bytes(),
        }
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Writes `bytes` and fsyncs. Plain (non-atomic) writes are fine here: the
/// file lives in a temp snapshot directory whose *rename* is the atomic
/// commit point.
fn write_synced(path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
    use std::io::Write;
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    Ok(())
}

/// Loads and fully verifies one snapshot directory.
fn load_snapshot(dir: &Path) -> Result<(Vec<Table>, Option<String>), StorageError> {
    let corrupt = |m: String| StorageError::Corrupt(m);
    let manifest = std::fs::read_to_string(dir.join("MANIFEST"))
        .map_err(|e| corrupt(format!("unreadable manifest in {}: {e}", dir.display())))?;
    // The manifest authenticates itself: its last line checksums the rest.
    let body_end = manifest
        .trim_end_matches('\n')
        .rfind('\n')
        .map(|i| i + 1)
        .ok_or_else(|| corrupt("manifest too short".to_string()))?;
    let (body, crc_line) = manifest.split_at(body_end);
    let stored: u32 = crc_line
        .trim()
        .strip_prefix("crc ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| corrupt("manifest missing crc line".to_string()))?;
    if crc32(body.as_bytes()) != stored {
        return Err(corrupt("manifest checksum mismatch".to_string()));
    }
    let mut lines = body.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err(corrupt("bad manifest magic".to_string()));
    }
    let mut tables = Vec::new();
    let mut functions_json = None;
    for line in lines {
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["epoch", _] => {}
            ["table", file, len, crc] | ["functions", file, len, crc] => {
                let want_len: usize = len
                    .parse()
                    .map_err(|_| corrupt(format!("bad length in manifest line '{line}'")))?;
                let want_crc: u32 = crc
                    .parse()
                    .map_err(|_| corrupt(format!("bad crc in manifest line '{line}'")))?;
                let bytes = std::fs::read(dir.join(file))
                    .map_err(|e| corrupt(format!("unreadable snapshot file {file}: {e}")))?;
                if bytes.len() != want_len || crc32(&bytes) != want_crc {
                    return Err(corrupt(format!("snapshot file {file} fails verification")));
                }
                if line.starts_with("table ") {
                    tables.push(decode_table(&bytes)?);
                } else {
                    functions_json = Some(String::from_utf8(bytes).map_err(|_| {
                        corrupt("snapshot functions.json is not utf-8".to_string())
                    })?);
                }
            }
            _ => return Err(corrupt(format!("unrecognized manifest line '{line}'"))),
        }
    }
    Ok((tables, functions_json))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, Schema, Value};

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kathdb_durable_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn kv_table(rows: &[(i64, &str)]) -> Table {
        Table::from_rows(
            "kv",
            Schema::of(&[("k", DataType::Int), ("v", DataType::Str)]),
            rows.iter()
                .map(|(k, v)| vec![Value::Int(*k), Value::Str(v.to_string())])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn fresh_directory_starts_empty() {
        let dir = tmp("fresh");
        let (d, rec) = Durability::open(&dir).unwrap();
        assert!(rec.tables.is_empty());
        assert!(rec.wal_records.is_empty());
        assert_eq!(rec.snapshot_epoch, 0);
        assert_eq!(d.status().snapshot_epoch, 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn checkpoint_then_recover_round_trips() {
        let dir = tmp("roundtrip");
        let t = kv_table(&[(1, "a"), (2, "b")]);
        {
            let (mut d, _) = Durability::open(&dir).unwrap();
            d.log(&WalRecord::CreateTable(t.clone())).unwrap();
            let epoch = d.checkpoint(&[&t], Some("{\"functions\": []}")).unwrap();
            assert_eq!(epoch, 1);
            d.log(&WalRecord::Insert {
                table: "kv".into(),
                rows: vec![vec![3i64.into(), "c".into()]],
            })
            .unwrap();
        }
        let (d, rec) = Durability::open(&dir).unwrap();
        assert_eq!(rec.snapshot_epoch, 1);
        assert_eq!(rec.tables, vec![t]);
        assert_eq!(rec.functions_json.as_deref(), Some("{\"functions\": []}"));
        assert_eq!(rec.wal_records.len(), 1);
        assert_eq!(d.status().wal_records, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_previous() {
        let dir = tmp("fallback");
        let t1 = kv_table(&[(1, "a")]);
        let t2 = kv_table(&[(1, "a"), (2, "b")]);
        {
            let (mut d, _) = Durability::open(&dir).unwrap();
            d.log(&WalRecord::CreateTable(t1.clone())).unwrap();
            d.checkpoint(&[&t1], None).unwrap();
            d.log(&WalRecord::Insert {
                table: "kv".into(),
                rows: vec![vec![2i64.into(), "b".into()]],
            })
            .unwrap();
            d.checkpoint(&[&t2], None).unwrap();
        }
        // Corrupt every file of snapshot 2.
        let snap2 = snapshot_dir(&dir, 2);
        for entry in std::fs::read_dir(&snap2).unwrap() {
            let p = entry.unwrap().path();
            let mut bytes = std::fs::read(&p).unwrap();
            if let Some(b) = bytes.get_mut(10) {
                *b ^= 0xFF;
            }
            std::fs::write(&p, &bytes).unwrap();
        }
        // Recovery falls back to snapshot 1 and replays segment 1 (the
        // insert) + segment 2 (empty): same logical state.
        let (_, rec) = Durability::open(&dir).unwrap();
        assert_eq!(rec.snapshot_epoch, 1);
        assert_eq!(rec.tables, vec![t1]);
        assert_eq!(rec.wal_records.len(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn all_snapshots_corrupt_is_an_error_not_a_panic() {
        let dir = tmp("allcorrupt");
        let t1 = kv_table(&[(1, "a")]);
        {
            let (mut d, _) = Durability::open(&dir).unwrap();
            for _ in 0..3 {
                d.checkpoint(&[&t1], None).unwrap();
            }
        }
        // Segment 0 and snapshot 1 are pruned by now; corrupt snapshots 2+3.
        for e in [2u64, 3] {
            let m = snapshot_dir(&dir, e).join("MANIFEST");
            std::fs::write(&m, "garbage").unwrap();
        }
        assert!(matches!(
            Durability::open(&dir),
            Err(StorageError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn pruning_keeps_two_snapshots() {
        let dir = tmp("prune");
        let t = kv_table(&[(1, "a")]);
        {
            let (mut d, _) = Durability::open(&dir).unwrap();
            for _ in 0..4 {
                d.checkpoint(&[&t], None).unwrap();
            }
        }
        let snaps = list_epochs(&dir.join("snapshots"), false).unwrap();
        assert_eq!(snaps, vec![3, 4]);
        let segs = list_epochs(&dir.join("wal"), true).unwrap();
        assert_eq!(segs, vec![3, 4]);
        let _ = std::fs::remove_dir_all(dir);
    }
}
