//! Durable storage: incremental checkpoints + WAL segments + crash recovery.
//!
//! On-disk layout of a durable database directory:
//!
//! ```text
//! <dir>/
//!   wal/
//!     000000.log      # records logged before the first checkpoint
//!     000001.log      # records logged after snapshot 000001, …
//!   pages/
//!     <crc><fnv>.kpg  # content-addressed compressed column pages,
//!                     # shared by every snapshot that references them
//!   snapshots/
//!     000001/
//!       MANIFEST      # file list + sizes + CRC32s, self-checksummed
//!       t0.kmeta …    # per-table page descriptors (schema + page list)
//!       functions.json
//! ```
//!
//! Checkpoint `N` converts every table to its paged representation and
//! writes only the pages whose content-addressed file does not already
//! exist — unchanged pages from earlier checkpoints are referenced, not
//! rewritten, which makes checkpoints incremental: after a small INSERT
//! only the dirty tail pages hit disk. The per-snapshot `tN.kmeta`
//! descriptors and the self-checksummed manifest then commit atomically
//! via temp-dir rename, the WAL rotates to segment `N`, state older than
//! `N-1` is pruned, and pages no retained snapshot references are swept.
//!
//! Recovery loads the newest snapshot whose manifest, descriptors, and
//! referenced page files all verify (falling back to the previous retained
//! snapshot otherwise), builds file-backed paged tables — pages stay on
//! disk until first touch — and replays every WAL segment from that epoch
//! onward, tolerating a torn final record.

use crate::io::{with_retry, Io, RetryPolicy};
use crate::page::ZoneMap;
use crate::paged::{PagedTable, RecoveredPage};
use crate::persist::{decode_table, dtype_from_tag, dtype_tag, get_str, put_str};
use crate::pool::BufferPool;
use crate::wal::{crc32, filter_committed, Wal, WalRecord};
use crate::{Column, Schema, StorageError, Table, DEFAULT_PAGE_ROWS};
use bytes::{Buf, BufMut, BytesMut};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MANIFEST_MAGIC: &str = "KSNAP 1";
const KMETA_MAGIC: &[u8; 4] = b"KPGM";
const KMETA_VERSION: u8 = 1;

/// What [`Durability::open`] reconstructed from disk.
#[derive(Debug)]
pub struct Recovered {
    /// Tables of the newest valid snapshot (empty for a fresh directory).
    /// Checkpointed tables come back *paged* — column pages stay on disk
    /// until first touch.
    pub tables: Vec<Table>,
    /// The function-registry payload persisted with that snapshot.
    pub functions_json: Option<String>,
    /// WAL records logged after the snapshot, in commit order, already
    /// filtered to the committed view: bare (autocommitted) records plus
    /// the contents of `Begin..Commit` spans; aborted and crash-torn open
    /// transactions are discarded. The caller applies them on top of
    /// `tables` (the storage layer keeps the apply semantics with the SQL
    /// layer that produced the records).
    pub wal_records: Vec<WalRecord>,
    /// Epoch of the snapshot that was loaded (0 = started empty).
    pub snapshot_epoch: u64,
    /// Highest transaction id seen in the log (0 when none): the txid
    /// allocator resumes above this.
    pub max_txid: u64,
    /// Framed transactions whose commit marker was found and replayed.
    pub committed_txns: u64,
    /// Framed transactions discarded (aborted or torn open at the tail).
    pub discarded_txns: u64,
}

/// What one checkpoint wrote (and avoided writing), for `\wal` and
/// the incremental-checkpoint regression tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// The snapshot epoch this checkpoint created.
    pub epoch: u64,
    /// Tables included.
    pub tables: usize,
    /// Pages newly written (dirty pages).
    pub pages_written: usize,
    /// Pages already durable from earlier checkpoints (clean pages).
    pub pages_reused: usize,
    /// Bytes of page data written this checkpoint.
    pub bytes_written: u64,
    /// Total bytes of page data the snapshot references.
    pub bytes_total: u64,
}

/// Point-in-time status of a durable directory, for the REPL's `\wal`.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityStatus {
    /// The database directory.
    pub dir: PathBuf,
    /// Newest snapshot epoch (0 before the first checkpoint).
    pub snapshot_epoch: u64,
    /// Complete records in the active segment (replayed + appended).
    pub wal_records: u64,
    /// Valid bytes in the active segment.
    pub wal_bytes: u64,
    /// What the most recent checkpoint of this session wrote (None before
    /// the first checkpoint).
    pub last_checkpoint: Option<CheckpointStats>,
    /// Batched fsyncs the group-commit coordinator issued (0 when the
    /// database is driven through the plain single-caller path).
    pub group_fsyncs: u64,
    /// Commits acknowledged by those batched fsyncs; `group_commits /
    /// group_fsyncs` is the mean group size.
    pub group_commits: u64,
}

/// The durability coordinator: owns the active WAL segment and writes
/// checkpoints. One instance per open database directory.
#[derive(Debug)]
pub struct Durability {
    dir: PathBuf,
    io: Io,
    /// Newest snapshot epoch == index of the active WAL segment.
    epoch: u64,
    wal: Wal,
    last_checkpoint: Option<CheckpointStats>,
    /// Set when WAL rotation failed after a committed checkpoint: the old
    /// segment is behind the new snapshot's replay horizon, so appending
    /// there would acknowledge records recovery can never see. All further
    /// logging refuses until the database is reopened.
    poisoned: bool,
}

fn epoch_name(e: u64) -> String {
    format!("{e:06}")
}

fn segment_path(dir: &Path, e: u64) -> PathBuf {
    dir.join("wal").join(format!("{}.log", epoch_name(e)))
}

fn snapshot_dir(dir: &Path, e: u64) -> PathBuf {
    dir.join("snapshots").join(epoch_name(e))
}

fn pages_dir(dir: &Path) -> PathBuf {
    dir.join("pages")
}

/// Numeric entries (dirs or `.log` files) under `path`, ascending.
fn list_epochs(io: &Io, path: &Path, strip_log: bool) -> Result<Vec<u64>, StorageError> {
    let mut out = Vec::new();
    let entries = match io.read_dir(path) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e.into()),
    };
    for path in entries {
        let Some(name) = path.file_name() else {
            continue;
        };
        let name = name.to_string_lossy();
        let stem = if strip_log {
            match name.strip_suffix(".log") {
                Some(s) => s,
                None => continue,
            }
        } else {
            name.as_ref()
        };
        if let Ok(e) = stem.parse::<u64>() {
            out.push(e);
        }
    }
    out.sort_unstable();
    Ok(out)
}

impl Durability {
    /// Opens a durable directory, creating it if absent, and recovers:
    /// newest valid snapshot + replay of every WAL segment from that epoch
    /// onward. Falls back to the previous retained snapshot (or, before
    /// any pruning, to the empty epoch-0 state) when the newest snapshot
    /// fails verification; errors with [`StorageError::Corrupt`] only when
    /// no retained state verifies. Recovered paged tables read their pages
    /// through `pool`.
    pub fn open(dir: &Path, pool: &Arc<BufferPool>) -> Result<(Self, Recovered), StorageError> {
        let io = pool.io().clone();
        io.create_dir_all(&dir.join("wal"))?;
        io.create_dir_all(&dir.join("snapshots"))?;
        io.create_dir_all(&pages_dir(dir))?;
        // Clear interrupted checkpoint attempts.
        for path in io.read_dir(&dir.join("snapshots"))? {
            let is_tmp = path
                .file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with(".tmp-"));
            if is_tmp {
                let _ = io.remove_dir_all(&path);
            }
        }

        let snaps = list_epochs(&io, &dir.join("snapshots"), false)?;
        let segments = list_epochs(&io, &dir.join("wal"), true)?;
        let max_epoch = snaps
            .iter()
            .chain(segments.iter())
            .copied()
            .max()
            .unwrap_or(0);

        // Candidate start states, newest first; epoch 0 (empty) is only
        // reachable while segment 0 is still retained or nothing exists.
        let mut candidates: Vec<u64> = snaps.iter().rev().copied().collect();
        if snaps.is_empty() || segments.first() == Some(&0) {
            candidates.push(0);
        }

        let mut first_error: Option<StorageError> = None;
        for candidate in candidates {
            // Every rotated-out segment in [candidate, max_epoch) must be
            // present — a pruned segment means this start state can no
            // longer reach the present.
            let chain_ok = (candidate..max_epoch).all(|e| segments.binary_search(&e).is_ok());
            if !chain_ok {
                continue;
            }
            let loaded = if candidate == 0 {
                Ok((Vec::new(), None))
            } else {
                load_snapshot(&io, dir, candidate, pool)
            };
            let (tables, functions_json) = match loaded {
                Ok(state) => state,
                Err(e) => {
                    first_error.get_or_insert(e);
                    continue;
                }
            };
            let mut wal_records = Vec::new();
            let mut replay_ok = true;
            for e in candidate..max_epoch {
                match Wal::replay_file_with(&segment_path(dir, e), &io) {
                    Ok(records) => wal_records.extend(records),
                    Err(err) => {
                        first_error.get_or_insert(err);
                        replay_ok = false;
                        break;
                    }
                }
            }
            if !replay_ok {
                continue;
            }
            // The active segment: replay and truncate any torn tail.
            let (mut wal, tail) = Wal::open_with(&segment_path(dir, max_epoch), io.clone())?;
            wal_records.extend(tail);
            // Transaction framing: replay bare records and committed
            // spans only. A malformed frame sequence is corruption — try
            // the next candidate like any other corrupt state.
            let filtered = match filter_committed(wal_records) {
                Ok(f) => f,
                Err(e) => {
                    first_error.get_or_insert(e);
                    continue;
                }
            };
            // Seal a crash-torn open transaction: its complete frames sit
            // at the tail, so without an explicit abort marker, bare
            // records appended later would be swallowed into it at the
            // next replay.
            if let Some(txid) = filtered.open_txn {
                wal.append(&WalRecord::Abort(txid))?;
            }
            return Ok((
                Self {
                    dir: dir.to_path_buf(),
                    io,
                    epoch: max_epoch,
                    wal,
                    last_checkpoint: None,
                    poisoned: false,
                },
                Recovered {
                    tables,
                    functions_json,
                    wal_records: filtered.records,
                    snapshot_epoch: candidate,
                    max_txid: filtered.max_txid,
                    committed_txns: filtered.committed_txns,
                    discarded_txns: filtered.discarded_txns,
                },
            ));
        }
        Err(first_error.unwrap_or_else(|| {
            StorageError::Corrupt("no recoverable snapshot or wal state".to_string())
        }))
    }

    /// Appends one record to the active segment and fsyncs it. Call this
    /// *before* applying the mutation in memory (write-ahead). Refuses
    /// once the handle is poisoned (WAL rotation failed after a committed
    /// checkpoint): the active segment is behind the snapshot's replay
    /// horizon, so an append there would be acknowledged-then-lost.
    pub fn log(&mut self, record: &WalRecord) -> Result<(), StorageError> {
        if self.poisoned {
            return Err(StorageError::Io(
                "wal rotation failed after the last checkpoint; reopen the database".to_string(),
            ));
        }
        self.wal.append(record)
    }

    /// Appends a batch of records as one contiguous write **without
    /// fsyncing** (see [`Wal::append_batch_nosync`]), returning the new
    /// tail offset. The group-commit coordinator pairs this with
    /// [`Durability::sync_wal`] (or an out-of-lock fsync through
    /// [`Durability::wal_sync_handles`]) and rolls back with
    /// [`Durability::rewind_wal`] when the fsync fails.
    pub fn log_batch_nosync<'a>(
        &mut self,
        records: impl IntoIterator<Item = &'a WalRecord>,
    ) -> Result<u64, StorageError> {
        if self.poisoned {
            return Err(StorageError::Io(
                "wal rotation failed after the last checkpoint; reopen the database".to_string(),
            ));
        }
        self.wal.append_batch_nosync(records)
    }

    /// Fsyncs the active segment (acknowledges every batch appended since
    /// the last sync).
    pub fn sync_wal(&self) -> Result<(), StorageError> {
        self.wal.sync()
    }

    /// Clones the handles a group-commit leader needs to fsync the active
    /// segment outside the commit lock.
    pub fn wal_sync_handles(&self) -> (Io, PathBuf, RetryPolicy) {
        self.wal.sync_handles()
    }

    /// Valid bytes in the active segment (the durable LSN once fsynced).
    pub fn wal_tail(&self) -> u64 {
        self.wal.bytes()
    }

    /// Complete records in the active segment.
    pub fn wal_record_count(&self) -> u64 {
        self.wal.records()
    }

    /// Rolls the active segment back to `(len, records)` after a failed
    /// group fsync (see [`Wal::rewind`]).
    pub fn rewind_wal(&mut self, len: u64, records: u64) {
        self.wal.rewind(len, records);
    }

    /// Writes an incremental checkpoint: every table is converted to its
    /// paged representation (a cheap no-op for tables still paged from the
    /// last checkpoint), dirty pages land in the shared content-addressed
    /// `pages/` store, and the per-table descriptors + manifest commit via
    /// temp dir + fsync + atomic rename. The WAL then rotates to a new
    /// segment, state older than the previous epoch is pruned, and
    /// unreferenced pages are swept.
    ///
    /// Returns the new epoch and the paged form of each input table (same
    /// order) so the caller can swap them into its catalog — the rows are
    /// identical, only the representation changed.
    pub fn checkpoint(
        &mut self,
        tables: &[Arc<Table>],
        pool: &Arc<BufferPool>,
        functions_json: Option<&str>,
    ) -> Result<(u64, Vec<Arc<Table>>), StorageError> {
        let next = self.epoch + 1;
        let snapshots = self.dir.join("snapshots");
        let pages = pages_dir(&self.dir);
        self.io.create_dir_all(&pages)?;
        let tmp = snapshots.join(format!(".tmp-{}", epoch_name(next)));
        let _ = self.io.remove_dir_all(&tmp);
        self.io.create_dir_all(&tmp)?;

        let mut stats = CheckpointStats {
            epoch: next,
            tables: tables.len(),
            pages_written: 0,
            pages_reused: 0,
            bytes_written: 0,
            bytes_total: 0,
        };
        let mut manifest = format!("{MANIFEST_MAGIC}\nepoch {next}\n");
        let mut paged_out = Vec::with_capacity(tables.len());
        for (i, table) in tables.iter().enumerate() {
            let paged = if table.is_paged() {
                Arc::clone(table)
            } else {
                Arc::new(table.to_paged(pool, DEFAULT_PAGE_ROWS)?)
            };
            let pt = paged.paged().ok_or_else(|| {
                StorageError::Corrupt("checkpoint produced a non-paged table".to_string())
            })?;
            let w = pt.write_durable(&pages)?;
            stats.pages_written += w.pages_written;
            stats.pages_reused += w.pages_reused;
            stats.bytes_written += w.bytes_written;
            stats.bytes_total += w.bytes_total;
            let file = format!("t{i}.kmeta");
            let bytes = encode_kmeta(paged.name(), pt)?;
            write_synced(&self.io, &tmp.join(&file), &bytes)?;
            manifest.push_str(&format!(
                "ptable {file} {} {}\n",
                bytes.len(),
                crc32(&bytes)
            ));
            paged_out.push(paged);
        }
        // Page files (and their directory entry) must be durable before the
        // manifest that references them commits.
        let _ = self.io.fsync_dir(&pages);
        if let Some(json) = functions_json {
            let bytes = json.as_bytes();
            write_synced(&self.io, &tmp.join("functions.json"), bytes)?;
            manifest.push_str(&format!(
                "functions functions.json {} {}\n",
                bytes.len(),
                crc32(bytes)
            ));
        }
        manifest.push_str(&format!("crc {}\n", crc32(manifest.as_bytes())));
        write_synced(&self.io, &tmp.join("MANIFEST"), manifest.as_bytes())?;
        let _ = self.io.fsync_dir(&tmp);
        // The commit point: everything before a failed rename is an
        // uncommitted `.tmp-` directory the next open clears.
        if let Err(e) = self.io.rename(&tmp, &snapshot_dir(&self.dir, next)) {
            return Err(e.into());
        }
        let _ = self.io.fsync_dir(&snapshots);

        // Rotate the log: subsequent records belong to the new epoch. The
        // snapshot is already committed, so a rotation failure poisons the
        // handle — appending to the *old* segment would acknowledge
        // records behind the new snapshot's replay horizon (recovery would
        // silently drop them).
        match Wal::open_with(&segment_path(&self.dir, next), self.io.clone()) {
            Ok((wal, _)) => {
                self.wal = wal;
                self.epoch = next;
            }
            Err(e) => {
                self.poisoned = true;
                return Err(e);
            }
        }

        // Post-commit housekeeping is best-effort: the checkpoint is
        // durable, and a failed prune or sweep must not report it as
        // failed — the next checkpoint retries, and stale state is
        // harmless (recovery ignores epochs older than the newest valid
        // chain; the sweep never deletes a page unless every retained
        // descriptor was read successfully).
        self.prune_and_sweep(next);
        self.last_checkpoint = Some(stats);
        Ok((next, paged_out))
    }

    /// Prunes snapshots/segments older than `next - 1` and sweeps
    /// unreferenced pages. Every step is individually best-effort.
    fn prune_and_sweep(&self, next: u64) {
        let snapshots = self.dir.join("snapshots");
        if let Ok(epochs) = list_epochs(&self.io, &snapshots, false) {
            for e in epochs {
                if e + 2 <= next {
                    let _ = self.io.remove_dir_all(&snapshot_dir(&self.dir, e));
                }
            }
        }
        if let Ok(epochs) = list_epochs(&self.io, &self.dir.join("wal"), true) {
            for e in epochs {
                if e + 2 <= next {
                    let _ = self.io.remove_file(&segment_path(&self.dir, e));
                }
            }
        }
        sweep_orphan_pages(&self.io, &self.dir);
    }

    /// Records appended through this handle since open or the last
    /// checkpoint (replayed tail records are not counted: they are already
    /// durable and re-replayable, so a session that only read needs no
    /// closing snapshot).
    pub fn appended_records(&self) -> u64 {
        self.wal.appended()
    }

    /// Current status (snapshot epoch, active-segment records/bytes, what
    /// the last checkpoint wrote).
    pub fn status(&self) -> DurabilityStatus {
        DurabilityStatus {
            dir: self.dir.clone(),
            snapshot_epoch: self.epoch,
            wal_records: self.wal.records(),
            wal_bytes: self.wal.bytes(),
            last_checkpoint: self.last_checkpoint,
            group_fsyncs: 0,
            group_commits: 0,
        }
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Writes `bytes` and fsyncs, retrying transient faults (the write is
/// idempotent: each attempt recreates the file). Plain (non-atomic) writes
/// are fine here: the file lives in a temp snapshot directory whose
/// *rename* is the atomic commit point.
fn write_synced(io: &Io, path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
    with_retry(&RetryPolicy::default(), || {
        io.write_file(path, bytes)?;
        io.fsync(path)
    })?;
    Ok(())
}

// ---- kmeta: per-table page descriptors ------------------------------------

/// One page's entry in a kmeta descriptor: file name, encoded length,
/// CRC32, FNV-1a 64, and the page's zone map.
type KmetaPage = (String, u32, u32, u64, ZoneMap);

/// Parsed form of a `tN.kmeta` descriptor.
struct KmetaDoc {
    name: String,
    schema: Schema,
    rows: u64,
    page_rows: u32,
    // columns[c][p] = one page descriptor
    columns: Vec<Vec<KmetaPage>>,
}

/// Serializes one paged table's descriptor: schema, shape, and the
/// content-addressed page list with per-page verification data and zone
/// maps. CRC32 trailer, like every binary format in this crate.
fn encode_kmeta(name: &str, pt: &PagedTable) -> Result<Vec<u8>, StorageError> {
    let mut buf = BytesMut::new();
    buf.put_slice(KMETA_MAGIC);
    buf.put_u8(KMETA_VERSION);
    put_str(&mut buf, name)?;
    let schema = pt.schema();
    buf.put_u32(schema.arity() as u32);
    for col in schema.columns() {
        put_str(&mut buf, &col.name)?;
        buf.put_u8(dtype_tag(col.dtype));
        buf.put_u8(col.nullable as u8);
    }
    buf.put_u64(pt.len() as u64);
    buf.put_u32(pt.page_rows() as u32);
    buf.put_u32(pt.page_count() as u32);
    for c in 0..schema.arity() {
        for p in 0..pt.page_count() {
            let slot = pt.slot(c, p);
            put_str(&mut buf, &slot.file_name())?;
            buf.put_u32(slot.encoded_len() as u32);
            buf.put_u32(slot.crc());
            buf.put_u64(slot.fnv());
            slot.zone().encode(&mut buf)?;
        }
    }
    let checksum = crc32(&buf);
    buf.put_u32(checksum);
    Ok(buf.to_vec())
}

/// Parses (and checksum-verifies) a `tN.kmeta` descriptor.
fn parse_kmeta(data: &[u8]) -> Result<KmetaDoc, StorageError> {
    let corrupt = |m: &str| StorageError::Corrupt(m.to_string());
    if data.len() < 9 || data[..4] != *KMETA_MAGIC {
        return Err(corrupt("bad kmeta magic"));
    }
    if data[4] != KMETA_VERSION {
        return Err(corrupt("unsupported kmeta version"));
    }
    let (payload, trailer) = data.split_at(data.len() - 4);
    let stored = u32::from_be_bytes(
        trailer
            .try_into()
            .map_err(|_| corrupt("kmeta trailer truncated"))?,
    );
    if crc32(payload) != stored {
        return Err(corrupt("kmeta checksum mismatch"));
    }
    let mut data = &payload[5..];
    let name = get_str(&mut data)?;
    if data.remaining() < 4 {
        return Err(corrupt("truncated kmeta schema"));
    }
    let arity = data.get_u32() as usize;
    if arity > 1 << 16 {
        return Err(corrupt("implausible kmeta arity"));
    }
    let mut cols = Vec::with_capacity(arity);
    for _ in 0..arity {
        let cname = get_str(&mut data)?;
        if data.remaining() < 2 {
            return Err(corrupt("truncated kmeta column"));
        }
        let dtype = dtype_from_tag(data.get_u8())?;
        let col = if data.get_u8() != 0 {
            Column::new(cname, dtype)
        } else {
            Column::required(cname, dtype)
        };
        cols.push(col);
    }
    let schema = Schema::new(cols)?;
    if data.remaining() < 16 {
        return Err(corrupt("truncated kmeta shape"));
    }
    let rows = data.get_u64();
    let page_rows = data.get_u32();
    let page_count = data.get_u32() as usize;
    if page_rows == 0 && page_count > 0 {
        return Err(corrupt("kmeta page_rows is zero"));
    }
    let mut columns = Vec::with_capacity(arity);
    for _ in 0..arity {
        let mut pages = Vec::with_capacity(page_count);
        for _ in 0..page_count {
            let file = get_str(&mut data)?;
            if data.remaining() < 16 {
                return Err(corrupt("truncated kmeta page entry"));
            }
            let len = data.get_u32();
            let crc = data.get_u32();
            let fnv = data.get_u64();
            let zone = ZoneMap::decode(&mut data)?;
            pages.push((file, len, crc, fnv, zone));
        }
        columns.push(pages);
    }
    if data.has_remaining() {
        return Err(corrupt("trailing bytes after kmeta"));
    }
    Ok(KmetaDoc {
        name,
        schema,
        rows,
        page_rows,
        columns,
    })
}

impl KmetaDoc {
    /// Builds the file-backed paged table this descriptor describes,
    /// verifying every referenced page file (length + CRC32) first —
    /// one file at a time, so recovery verification is O(data) I/O but
    /// bounded memory.
    fn into_table(
        self,
        io: &Io,
        root: &Path,
        pool: &Arc<BufferPool>,
    ) -> Result<Table, StorageError> {
        let pages = pages_dir(root);
        let mut recovered: Vec<Vec<RecoveredPage>> = Vec::with_capacity(self.columns.len());
        for col in self.columns {
            let mut out = Vec::with_capacity(col.len());
            for (file, len, crc, fnv, zone) in col {
                let path = pages.join(&file);
                let bytes = io.read(&path).map_err(|e| {
                    StorageError::Corrupt(format!("unreadable page file {file}: {e}"))
                })?;
                if bytes.len() != len as usize || crc32(&bytes) != crc {
                    return Err(StorageError::Corrupt(format!(
                        "page file {file} fails verification"
                    )));
                }
                out.push(RecoveredPage {
                    path,
                    len,
                    crc,
                    fnv,
                    zone,
                });
            }
            recovered.push(out);
        }
        let pt = PagedTable::from_recovered(
            self.schema,
            self.rows as usize,
            self.page_rows as usize,
            recovered,
            Arc::clone(pool),
        )?;
        Ok(Table::from_paged(self.name, Arc::new(pt)))
    }
}

/// Deletes page files no retained snapshot references. Deletion happens
/// only when the referenced set is provably complete: if any retained
/// snapshot fails to list, or any of its descriptors fails to read or
/// parse, the sweep is skipped entirely — an orphaned page is harmless, a
/// deleted referenced page is not. Individual deletions are best-effort
/// (a failed unlink leaves an orphan for the next sweep).
fn sweep_orphan_pages(io: &Io, dir: &Path) {
    let pages = pages_dir(dir);
    if !io.exists(&pages) {
        return;
    }
    let mut referenced: BTreeSet<String> = BTreeSet::new();
    let Ok(epochs) = list_epochs(io, &dir.join("snapshots"), false) else {
        return;
    };
    for e in epochs {
        let snap = snapshot_dir(dir, e);
        let Ok(entries) = io.read_dir(&snap) else {
            return;
        };
        for path in entries {
            if path.extension().is_some_and(|x| x == "kmeta") {
                let Ok(bytes) = io.read(&path) else {
                    return;
                };
                let Ok(doc) = parse_kmeta(&bytes) else {
                    return;
                };
                for col in &doc.columns {
                    for (file, ..) in col {
                        referenced.insert(file.clone());
                    }
                }
            }
        }
    }
    let Ok(entries) = io.read_dir(&pages) else {
        return;
    };
    for path in entries {
        let name = path.file_name().map(|n| n.to_string_lossy().to_string());
        if let Some(name) = name {
            if name.ends_with(".kpg") && !referenced.contains(&name) {
                let _ = io.remove_file(&path);
            }
        }
    }
}

/// Loads and fully verifies snapshot `epoch` under `root`.
fn load_snapshot(
    io: &Io,
    root: &Path,
    epoch: u64,
    pool: &Arc<BufferPool>,
) -> Result<(Vec<Table>, Option<String>), StorageError> {
    let dir = snapshot_dir(root, epoch);
    let corrupt = |m: String| StorageError::Corrupt(m);
    let manifest = io
        .read(&dir.join("MANIFEST"))
        .map_err(|e| corrupt(format!("unreadable manifest in {}: {e}", dir.display())))
        .and_then(|bytes| {
            String::from_utf8(bytes)
                .map_err(|_| corrupt(format!("manifest in {} is not utf-8", dir.display())))
        })?;
    // The manifest authenticates itself: its last line checksums the rest.
    let body_end = manifest
        .trim_end_matches('\n')
        .rfind('\n')
        .map(|i| i + 1)
        .ok_or_else(|| corrupt("manifest too short".to_string()))?;
    let (body, crc_line) = manifest.split_at(body_end);
    let stored: u32 = crc_line
        .trim()
        .strip_prefix("crc ")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| corrupt("manifest missing crc line".to_string()))?;
    if crc32(body.as_bytes()) != stored {
        return Err(corrupt("manifest checksum mismatch".to_string()));
    }
    let mut lines = body.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err(corrupt("bad manifest magic".to_string()));
    }
    let mut tables = Vec::new();
    let mut functions_json = None;
    for line in lines {
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["epoch", _] => {}
            ["table", file, len, crc]
            | ["ptable", file, len, crc]
            | ["functions", file, len, crc] => {
                let want_len: usize = len
                    .parse()
                    .map_err(|_| corrupt(format!("bad length in manifest line '{line}'")))?;
                let want_crc: u32 = crc
                    .parse()
                    .map_err(|_| corrupt(format!("bad crc in manifest line '{line}'")))?;
                let bytes = io
                    .read(&dir.join(file))
                    .map_err(|e| corrupt(format!("unreadable snapshot file {file}: {e}")))?;
                if bytes.len() != want_len || crc32(&bytes) != want_crc {
                    return Err(corrupt(format!("snapshot file {file} fails verification")));
                }
                if line.starts_with("ptable ") {
                    tables.push(parse_kmeta(&bytes)?.into_table(io, root, pool)?);
                } else if line.starts_with("table ") {
                    // Legacy whole-table snapshots (pre-paged format).
                    tables.push(decode_table(&bytes)?);
                } else {
                    functions_json = Some(String::from_utf8(bytes).map_err(|_| {
                        corrupt("snapshot functions.json is not utf-8".to_string())
                    })?);
                }
            }
            _ => return Err(corrupt(format!("unrecognized manifest line '{line}'"))),
        }
    }
    Ok((tables, functions_json))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::encode_table;
    use crate::{DataType, Value};

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kathdb_durable_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::with_budget(64))
    }

    fn kv_table(rows: &[(i64, &str)]) -> Table {
        Table::from_rows(
            "kv",
            Schema::of(&[("k", DataType::Int), ("v", DataType::Str)]),
            rows.iter()
                .map(|(k, v)| vec![Value::Int(*k), Value::Str(v.to_string())])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn fresh_directory_starts_empty() {
        let dir = tmp("fresh");
        let (d, rec) = Durability::open(&dir, &pool()).unwrap();
        assert!(rec.tables.is_empty());
        assert!(rec.wal_records.is_empty());
        assert_eq!(rec.snapshot_epoch, 0);
        assert_eq!(d.status().snapshot_epoch, 0);
        assert_eq!(d.status().last_checkpoint, None);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn checkpoint_then_recover_round_trips() {
        let dir = tmp("roundtrip");
        let pl = pool();
        let t = kv_table(&[(1, "a"), (2, "b")]);
        {
            let (mut d, _) = Durability::open(&dir, &pl).unwrap();
            d.log(&WalRecord::CreateTable(t.clone())).unwrap();
            let (epoch, paged) = d
                .checkpoint(&[Arc::new(t.clone())], &pl, Some("{\"functions\": []}"))
                .unwrap();
            assert_eq!(epoch, 1);
            assert_eq!(paged.len(), 1);
            assert!(paged[0].is_paged());
            d.log(&WalRecord::Insert {
                table: "kv".into(),
                rows: vec![vec![3i64.into(), "c".into()]],
            })
            .unwrap();
        }
        let (d, rec) = Durability::open(&dir, &pl).unwrap();
        assert_eq!(rec.snapshot_epoch, 1);
        assert_eq!(rec.tables, vec![t]);
        assert!(rec.tables[0].is_paged());
        assert_eq!(rec.functions_json.as_deref(), Some("{\"functions\": []}"));
        assert_eq!(rec.wal_records.len(), 1);
        assert_eq!(d.status().wal_records, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn second_checkpoint_writes_only_dirty_pages() {
        let dir = tmp("incremental");
        let pl = pool();
        // Large enough for several pages per column at the default height.
        let rows: Vec<(i64, String)> = (0..10_000)
            .map(|i| (i, format!("value-{}", i % 50)))
            .collect();
        let refs: Vec<(i64, &str)> = rows.iter().map(|(k, v)| (*k, v.as_str())).collect();
        let t1 = kv_table(&refs);
        let (mut d, _) = Durability::open(&dir, &pl).unwrap();
        let (_, paged) = d.checkpoint(&[Arc::new(t1)], &pl, None).unwrap();
        let first = d.status().last_checkpoint.unwrap();
        assert!(first.pages_written > 2);
        assert_eq!(first.pages_reused, 0);
        // A small INSERT dirties only the tail page of each column.
        let mut t2 = (*paged[0]).clone();
        t2.push(vec![Value::Int(10_000), Value::Str("tail".into())])
            .unwrap();
        d.checkpoint(&[Arc::new(t2)], &pl, None).unwrap();
        let second = d.status().last_checkpoint.unwrap();
        assert_eq!(second.pages_written, 2, "only the tail page per column");
        assert!(second.pages_reused >= first.pages_written - 2);
        assert!(
            second.bytes_written < first.bytes_written,
            "incremental checkpoint must write strictly fewer bytes \
             ({} vs {})",
            second.bytes_written,
            first.bytes_written
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn orphaned_pages_are_swept() {
        let dir = tmp("sweep");
        let pl = pool();
        let (mut d, _) = Durability::open(&dir, &pl).unwrap();
        let t1 = kv_table(&[(1, "first")]);
        d.checkpoint(&[Arc::new(t1)], &pl, None).unwrap();
        let t2 = kv_table(&[(2, "second")]);
        d.checkpoint(&[Arc::new(t2)], &pl, None).unwrap();
        // Both snapshots retained: both page sets must exist.
        let count = || {
            std::fs::read_dir(pages_dir(&dir))
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .path()
                        .extension()
                        .is_some_and(|x| x == "kpg")
                })
                .count()
        };
        assert_eq!(count(), 4); // 2 columns × 2 distinct snapshots
        let t3 = kv_table(&[(3, "third")]);
        d.checkpoint(&[Arc::new(t3)], &pl, None).unwrap();
        // Snapshot 1 was pruned; its pages are no longer referenced.
        assert_eq!(count(), 4); // snapshots 2 and 3 remain
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_previous() {
        let dir = tmp("fallback");
        let pl = pool();
        let t1 = kv_table(&[(1, "a")]);
        let t2 = kv_table(&[(1, "a"), (2, "b")]);
        {
            let (mut d, _) = Durability::open(&dir, &pl).unwrap();
            d.log(&WalRecord::CreateTable(t1.clone())).unwrap();
            d.checkpoint(&[Arc::new(t1.clone())], &pl, None).unwrap();
            d.log(&WalRecord::Insert {
                table: "kv".into(),
                rows: vec![vec![2i64.into(), "b".into()]],
            })
            .unwrap();
            d.checkpoint(&[Arc::new(t2)], &pl, None).unwrap();
        }
        // Corrupt every file of snapshot 2.
        let snap2 = snapshot_dir(&dir, 2);
        for entry in std::fs::read_dir(&snap2).unwrap() {
            let p = entry.unwrap().path();
            let mut bytes = std::fs::read(&p).unwrap();
            if let Some(b) = bytes.get_mut(10) {
                *b ^= 0xFF;
            }
            std::fs::write(&p, &bytes).unwrap();
        }
        // Recovery falls back to snapshot 1 and replays segment 1 (the
        // insert) + segment 2 (empty): same logical state.
        let (_, rec) = Durability::open(&dir, &pl).unwrap();
        assert_eq!(rec.snapshot_epoch, 1);
        assert_eq!(rec.tables, vec![t1]);
        assert_eq!(rec.wal_records.len(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_page_file_fails_verification_and_falls_back() {
        let dir = tmp("missingpage");
        let pl = pool();
        let t1 = kv_table(&[(1, "a")]);
        let t2 = kv_table(&[(1, "a"), (2, "b")]);
        {
            let (mut d, _) = Durability::open(&dir, &pl).unwrap();
            d.log(&WalRecord::CreateTable(t1.clone())).unwrap();
            d.checkpoint(&[Arc::new(t1.clone())], &pl, None).unwrap();
            d.log(&WalRecord::Insert {
                table: "kv".into(),
                rows: vec![vec![2i64.into(), "b".into()]],
            })
            .unwrap();
            d.checkpoint(&[Arc::new(t2.clone())], &pl, None).unwrap();
        }
        // Delete a page referenced only by snapshot 2 (t2's "k" column
        // differs from t1's, so its page file is unique to snapshot 2).
        let kmeta = std::fs::read(snapshot_dir(&dir, 2).join("t0.kmeta")).unwrap();
        let doc2 = parse_kmeta(&kmeta).unwrap();
        let kmeta1 = std::fs::read(snapshot_dir(&dir, 1).join("t0.kmeta")).unwrap();
        let doc1 = parse_kmeta(&kmeta1).unwrap();
        let files1: BTreeSet<String> = doc1
            .columns
            .iter()
            .flatten()
            .map(|(f, ..)| f.clone())
            .collect();
        let only2 = doc2
            .columns
            .iter()
            .flatten()
            .map(|(f, ..)| f.clone())
            .find(|f| !files1.contains(f))
            .expect("snapshot 2 must own at least one new page");
        std::fs::remove_file(pages_dir(&dir).join(only2)).unwrap();
        let (_, rec) = Durability::open(&dir, &pl).unwrap();
        assert_eq!(rec.snapshot_epoch, 1);
        assert_eq!(rec.tables, vec![t1]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn all_snapshots_corrupt_is_an_error_not_a_panic() {
        let dir = tmp("allcorrupt");
        let pl = pool();
        let t1 = kv_table(&[(1, "a")]);
        {
            let (mut d, _) = Durability::open(&dir, &pl).unwrap();
            for _ in 0..3 {
                d.checkpoint(&[Arc::new(t1.clone())], &pl, None).unwrap();
            }
        }
        // Segment 0 and snapshot 1 are pruned by now; corrupt snapshots 2+3.
        for e in [2u64, 3] {
            let m = snapshot_dir(&dir, e).join("MANIFEST");
            std::fs::write(&m, "garbage").unwrap();
        }
        assert!(matches!(
            Durability::open(&dir, &pl),
            Err(StorageError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn pruning_keeps_two_snapshots() {
        let dir = tmp("prune");
        let pl = pool();
        let t = kv_table(&[(1, "a")]);
        {
            let (mut d, _) = Durability::open(&dir, &pl).unwrap();
            for _ in 0..4 {
                d.checkpoint(&[Arc::new(t.clone())], &pl, None).unwrap();
            }
        }
        let io = Io::real();
        let snaps = list_epochs(&io, &dir.join("snapshots"), false).unwrap();
        assert_eq!(snaps, vec![3, 4]);
        let segs = list_epochs(&io, &dir.join("wal"), true).unwrap();
        assert_eq!(segs, vec![3, 4]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn failed_prune_never_deletes_referenced_pages() {
        use crate::{FaultPlan, IoOp};
        let dir = tmp("pruneguard");
        let io = Io::real();
        let pl = Arc::new(BufferPool::with_budget_io(64, io.clone()));
        let (mut d, _) = Durability::open(&dir, &pl).unwrap();
        let t1 = kv_table(&[(1, "first")]);
        let t2 = kv_table(&[(2, "second")]);
        let t3 = kv_table(&[(3, "third")]);
        d.checkpoint(&[Arc::new(t1)], &pl, None).unwrap();
        d.checkpoint(&[Arc::new(t2)], &pl, None).unwrap();
        // Every unlink (snapshot prune, segment prune, orphan sweep) fails:
        // the checkpoint must still commit and report success…
        io.install_faults(FaultPlan::probabilistic(3, 1.0).on_ops(&[IoOp::Unlink]));
        d.checkpoint(&[Arc::new(t3.clone())], &pl, None).unwrap();
        io.clear_faults();
        // …and every page referenced by any retained kmeta must survive.
        let io2 = Io::real();
        for e in list_epochs(&io2, &dir.join("snapshots"), false).unwrap() {
            for path in io2.read_dir(&snapshot_dir(&dir, e)).unwrap() {
                if path.extension().is_some_and(|x| x == "kmeta") {
                    let doc = parse_kmeta(&std::fs::read(&path).unwrap()).unwrap();
                    for (file, ..) in doc.columns.iter().flatten() {
                        assert!(
                            pages_dir(&dir).join(file).exists(),
                            "page {file} referenced by snapshot {e} was deleted"
                        );
                    }
                }
            }
        }
        // Reopen recovers the committed state, and the next checkpoint
        // retries the housekeeping successfully.
        drop(d);
        let (mut d, rec) = Durability::open(&dir, &pl).unwrap();
        assert_eq!(rec.snapshot_epoch, 3);
        assert_eq!(rec.tables, vec![t3.clone()]);
        d.checkpoint(&[Arc::new(t3)], &pl, None).unwrap();
        let snaps = list_epochs(&io2, &dir.join("snapshots"), false).unwrap();
        assert_eq!(snaps, vec![3, 4], "stale snapshots pruned on retry");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn wal_rotation_failure_poisons_logging_until_reopen() {
        let dir = tmp("rotatepoison");
        let pl = pool();
        let (mut d, _) = Durability::open(&dir, &pl).unwrap();
        let t = kv_table(&[(1, "a")]);
        d.log(&WalRecord::CreateTable(t.clone())).unwrap();
        // Make rotation fail after the snapshot rename commits: a
        // directory squats on the new segment's path, so opening it
        // errors. The checkpoint reports the failure…
        std::fs::create_dir_all(segment_path(&dir, 1)).unwrap();
        let err = d.checkpoint(&[Arc::new(t.clone())], &pl, None).unwrap_err();
        assert!(matches!(
            err,
            StorageError::Io(_) | StorageError::Corrupt(_)
        ));
        // Logging now refuses: an append to the old segment would be
        // acknowledged-then-lost behind snapshot 1.
        assert!(matches!(
            d.log(&WalRecord::DropTable("kv".into())),
            Err(StorageError::Io(_))
        ));
        // Reopen (after clearing the obstruction) recovers the committed
        // snapshot.
        std::fs::remove_dir_all(segment_path(&dir, 1)).unwrap();
        drop(d);
        let (mut d, rec) = Durability::open(&dir, &pl).unwrap();
        assert_eq!(rec.snapshot_epoch, 1);
        assert_eq!(rec.tables, vec![t]);
        d.log(&WalRecord::DropTable("kv".into())).unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn recovery_replays_committed_txns_and_seals_torn_open_ones() {
        let dir = tmp("txnframing");
        let pl = pool();
        let ins = |k: i64, v: &str| WalRecord::Insert {
            table: "kv".into(),
            rows: vec![vec![k.into(), v.into()]],
        };
        {
            let (mut d, _) = Durability::open(&dir, &pl).unwrap();
            d.log(&WalRecord::CreateTable(kv_table(&[]))).unwrap();
            // Committed transaction, then a torn one (Begin + record but
            // no Commit — as a crash mid-group-write would leave).
            let committed = [WalRecord::Begin(1), ins(1, "a"), WalRecord::Commit(1)];
            d.log_batch_nosync(committed.iter()).unwrap();
            d.sync_wal().unwrap();
            let torn = [WalRecord::Begin(2), ins(2, "lost")];
            d.log_batch_nosync(torn.iter()).unwrap();
            d.sync_wal().unwrap();
        }
        let (mut d, rec) = Durability::open(&dir, &pl).unwrap();
        assert_eq!(
            rec.wal_records,
            vec![WalRecord::CreateTable(kv_table(&[])), ins(1, "a")]
        );
        assert_eq!(rec.max_txid, 2);
        assert_eq!(rec.committed_txns, 1);
        assert_eq!(rec.discarded_txns, 1);
        // The open transaction was sealed with an Abort, so a bare append
        // after recovery is not swallowed into it at the next replay.
        d.log(&ins(3, "kept")).unwrap();
        drop(d);
        let (_, rec) = Durability::open(&dir, &pl).unwrap();
        assert_eq!(
            rec.wal_records,
            vec![
                WalRecord::CreateTable(kv_table(&[])),
                ins(1, "a"),
                ins(3, "kept")
            ]
        );
        assert_eq!(rec.discarded_txns, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn legacy_table_manifest_lines_still_load() {
        // A snapshot written in the pre-paged whole-table format must still
        // recover (mixed-version directories after an upgrade).
        let dir = tmp("legacy");
        std::fs::create_dir_all(dir.join("wal")).unwrap();
        std::fs::create_dir_all(dir.join("snapshots").join("000001")).unwrap();
        let t = kv_table(&[(7, "legacy")]);
        let bytes = encode_table(&t).unwrap();
        let snap = dir.join("snapshots").join("000001");
        std::fs::write(snap.join("t0.ktbl"), &bytes).unwrap();
        let mut manifest = format!("{MANIFEST_MAGIC}\nepoch 1\n");
        manifest.push_str(&format!(
            "table t0.ktbl {} {}\n",
            bytes.len(),
            crc32(&bytes)
        ));
        manifest.push_str(&format!("crc {}\n", crc32(manifest.as_bytes())));
        std::fs::write(snap.join("MANIFEST"), manifest).unwrap();
        std::fs::write(segment_path(&dir, 1), b"").unwrap();
        let (_, rec) = Durability::open(&dir, &pool()).unwrap();
        assert_eq!(rec.snapshot_epoch, 1);
        assert_eq!(rec.tables, vec![t]);
        assert!(!rec.tables[0].is_paged());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn kmeta_round_trips() {
        let pl = pool();
        let t = kv_table(&[(1, "a"), (2, "b"), (3, "c")]);
        let paged = t.to_paged(&pl, 2).unwrap();
        let pt = paged.paged().unwrap();
        let bytes = encode_kmeta("kv", pt).unwrap();
        let doc = parse_kmeta(&bytes).unwrap();
        assert_eq!(doc.name, "kv");
        assert_eq!(doc.schema, *t.schema());
        assert_eq!(doc.rows, 3);
        assert_eq!(doc.page_rows, 2);
        assert_eq!(doc.columns.len(), 2);
        assert_eq!(doc.columns[0].len(), 2);
        // Every bit flip is caught.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1;
            assert!(parse_kmeta(&bad).is_err(), "bit flip at {i} undetected");
        }
    }
}
