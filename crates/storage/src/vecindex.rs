//! Embedding columns and the top-k vector-similarity access path.
//!
//! This is the storage half of the paper's flagship physical-optimizer
//! example: "vector-based similarity search for semantic keyword matching"
//! (§2.2), chosen per query between an exact-but-linear and an
//! approximate-but-sublinear implementation of the *same* logical operator
//! (§4). Embeddings live in ordinary `Value::Blob` cells as little-endian
//! `f32` vectors ([`encode_embedding`]/[`decode_embedding`]), so they ride
//! the existing persistence, WAL, and snapshot formats unchanged —
//! durability needs no new on-disk format. The derived search structures
//! ([`VectorIndex`]) are catalog state, rebuilt lazily after inserts,
//! drops, and crash recovery.

use crate::ops::IndexScan;
use crate::{DataType, Operator, Row, RowBatch, Schema, StorageError, Table, Value};
use kath_vector::{cosine, embed_query, IvfIndex};
use parking_lot::RwLock;
use std::sync::Arc;

/// Encodes an embedding as little-endian `f32` bytes for a `Value::Blob`.
pub fn encode_embedding(v: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Decodes a blob back into an embedding; `None` when the length is not a
/// multiple of 4 (a corrupt cell decodes to no-match, never to garbage
/// scores).
pub fn decode_embedding(bytes: &[u8]) -> Option<Vec<f32>> {
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect(),
    )
}

/// Physical implementation of the top-k similarity operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorStrategy {
    /// Exact linear scan over every indexed embedding.
    Flat,
    /// IVF approximate search: probe only the nearest cluster lists.
    Ivf,
}

/// Planner knob for the vector access path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VectorMode {
    /// Cost model picks Flat vs IVF from catalog cardinality (the default).
    #[default]
    Auto,
    /// Never lower to the vector operator (full-sort fallback plan).
    Off,
    /// Force the exact flat scan.
    Flat,
    /// Force the IVF approximate path.
    Ivf,
}

/// Seed fixing the IVF k-means initialization of catalog vector indexes.
pub const VECTOR_INDEX_SEED: u64 = 0x5EED;

/// Cluster count for an IVF index over `n` vectors: ~√n, capped so the
/// centroid-ranking step stays cheap.
pub fn default_nlist(n: usize) -> usize {
    ((n as f64).sqrt().round() as usize).clamp(1, 64)
}

/// Clusters probed per query: a quarter of the lists (≥ 1) — enough for
/// high recall on clustered data while skipping most candidates.
pub fn default_nprobe(nlist: usize) -> usize {
    nlist.div_ceil(4).clamp(1, nlist.max(1))
}

/// Extra scoring-equivalent work the IVF path pays per query on top of its
/// probes: centroid bookkeeping plus the amortized share of (re)building
/// the cluster lists. This constant sets the Flat→IVF crossover.
pub const IVF_FIXED_COST: f64 = 3000.0;

/// Cost of one top-k query in scoring-work units (candidate cosines) —
/// the unit-free model [`preferred_vector_strategy`] minimizes; the
/// optimizer crate scales it to milliseconds for plan estimates.
pub fn vector_search_cost(rows: usize, strategy: VectorStrategy) -> f64 {
    match strategy {
        VectorStrategy::Flat => rows as f64,
        VectorStrategy::Ivf => {
            let nlist = default_nlist(rows);
            let nprobe = default_nprobe(nlist);
            nlist as f64 + rows as f64 * nprobe as f64 / nlist as f64 + IVF_FIXED_COST
        }
    }
}

/// The cost model's Flat-vs-IVF choice for a table of `rows` vectors:
/// exact linear scan while the table is small, approximate sublinear
/// probing once the probed fraction plus the fixed IVF overhead undercut
/// the full scan (≈ 4k rows with the default parameters).
pub fn preferred_vector_strategy(rows: usize) -> VectorStrategy {
    if vector_search_cost(rows, VectorStrategy::Ivf)
        < vector_search_cost(rows, VectorStrategy::Flat)
    {
        VectorStrategy::Ivf
    } else {
        VectorStrategy::Flat
    }
}

/// A derived similarity index over one table column.
///
/// Built from `BLOB` cells (decoded embeddings) or `STR` cells (embedded
/// through the canonical [`kath_vector::embed_query`] convention on the
/// fly). Rows whose cell is NULL, undecodable, or non-finite are
/// *unscored*: they never match, but top-k results pad with them (in row
/// order) exactly like the full-sort fallback ranks NULL scores last — so
/// both physical plans return identical rows.
#[derive(Debug)]
pub struct VectorIndex {
    column: String,
    rows: usize,
    entries: Vec<(usize, Vec<f32>)>,
    unscored: Vec<usize>,
    // The IVF structure is built lazily on the first approximate query:
    // small tables answered by the flat scan never pay for k-means. (The
    // flat scan runs straight over `entries` — no duplicated copy.)
    ivf: RwLock<Option<Arc<IvfIndex>>>,
}

impl VectorIndex {
    /// Builds the index over `table.column`. Cells must be BLOB (encoded
    /// embeddings), STR (embedded on the fly), or NULL.
    pub fn build(table: &Table, column: &str) -> Result<Self, StorageError> {
        let mut entries: Vec<(usize, Vec<f32>)> = Vec::new();
        let mut unscored: Vec<usize> = Vec::new();
        // Usable means the canonical dimensionality (queries come from
        // `embed_query`, so a stored vector of any other length is a
        // no-match by the SIMILARITY dimension rule — never a
        // truncated-dot garbage score) AND a squared norm that does not
        // overflow f32 (`cosine` returns NaN, no-match, for a non-finite
        // norm against *any* query). Such rows live in the unscored set —
        // exactly where the fallback plan's NULL score puts them — rather
        // than silently vanish from (or pollute) top-k results.
        let usable = |v: &[f32]| {
            v.len() == kath_vector::DIM && v.iter().map(|x| x * x).sum::<f32>().is_finite()
        };
        // Streams page by page on paged tables (bounded by the pool budget).
        table.for_each_in_column(column, |pos, cell| {
            match cell {
                Value::Null => unscored.push(pos),
                Value::Blob(b) => match decode_embedding(b) {
                    Some(v) if usable(&v) => entries.push((pos, v)),
                    _ => unscored.push(pos),
                },
                Value::Str(s) => entries.push((pos, embed_query(s))),
                other => {
                    return Err(StorageError::TypeMismatch {
                        column: column.to_string(),
                        expected: DataType::Blob,
                        got: other.data_type(),
                    })
                }
            }
            Ok(())
        })?;
        Ok(Self {
            column: column.to_string(),
            rows: table.len(),
            entries,
            unscored,
            ivf: RwLock::new(None),
        })
    }

    /// The indexed column.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Rows of the table at build time.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The scored `(row position, embedding)` entries, in row order (the
    /// unit the parallel driver splits into morsels).
    pub fn entries(&self) -> &[(usize, Vec<f32>)] {
        &self.entries
    }

    /// Row positions with no usable embedding, in row order.
    pub fn unscored(&self) -> &[usize] {
        &self.unscored
    }

    /// Cluster count of the IVF structure (building it if needed).
    pub fn nlist(&self) -> usize {
        self.ivf_index().nlist()
    }

    fn ivf_index(&self) -> Arc<IvfIndex> {
        if let Some(ix) = self.ivf.read().as_ref() {
            return Arc::clone(ix);
        }
        let mut slot = self.ivf.write();
        if let Some(ix) = slot.as_ref() {
            return Arc::clone(ix);
        }
        let nlist = default_nlist(self.entries.len());
        let built = Arc::new(IvfIndex::build(
            self.entries
                .iter()
                .map(|(pos, v)| (*pos as u64, v.clone()))
                .collect(),
            nlist,
            default_nprobe(nlist),
            VECTOR_INDEX_SEED,
        ));
        *slot = Some(Arc::clone(&built));
        built
    }

    /// Top-k row positions by cosine similarity to `query`, ranked
    /// (score descending, then row position — exactly the order a stable
    /// full sort on the score column produces), padded with unscored rows
    /// when fewer than `k` rows carry a finite score.
    pub fn search(&self, query: &[f32], k: usize, strategy: VectorStrategy) -> Vec<usize> {
        let mut out: Vec<usize> = match strategy {
            VectorStrategy::Flat => top_k_entries(&self.entries, query, k)
                .into_iter()
                .map(|(pos, _)| pos)
                .collect(),
            VectorStrategy::Ivf => {
                let hits = self.ivf_index().search(query, k);
                if hits.len() < k.min(self.entries.len()) {
                    // The probed clusters held fewer than k candidates
                    // (tiny corpus or skewed clustering): top up through
                    // the exact scan instead of under-filling — both
                    // physical implementations must return the same row
                    // *count* for the same query.
                    return self.search(query, k, VectorStrategy::Flat);
                }
                hits.into_iter().map(|h| h.id as usize).collect()
            }
        };
        if out.len() < k {
            out.extend(self.unscored.iter().copied().take(k - out.len()));
        }
        out
    }
}

/// Exact top-k over a slice of index entries: the per-morsel unit of the
/// parallel vector scan. Returns `(row position, score)` ranked by
/// (score descending, position ascending); non-finite scores are
/// no-matches and skipped, mirroring the serial index search.
pub fn top_k_entries(entries: &[(usize, Vec<f32>)], query: &[f32], k: usize) -> Vec<(usize, f32)> {
    let mut scored: Vec<(usize, f32)> = entries
        .iter()
        .map(|(pos, v)| (*pos, cosine(query, v)))
        .filter(|(_, s)| s.is_finite())
        .collect();
    scored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

/// Deterministic merge of per-morsel top-k candidate lists: the global
/// top-k of the union. Because every global winner survives its own
/// morsel's local top-k, merging local winners reproduces the serial
/// result bit for bit, independent of worker count and scheduling.
pub fn merge_top_k(mut candidates: Vec<(usize, f32)>, k: usize) -> Vec<(usize, f32)> {
    candidates.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    candidates.truncate(k);
    candidates
}

/// The top-k vector-scan operator: the physical implementation of
/// `ORDER BY SIMILARITY(col, 'query') DESC LIMIT k` the planner picks over
/// a full sort. Runs the (Flat or IVF) index search eagerly at
/// construction, then streams the winning rows in rank order.
pub struct VectorTopK {
    inner: IndexScan,
    strategy: VectorStrategy,
    result_rows: usize,
}

impl VectorTopK {
    /// Searches `index` (over `table`) for the top `k` rows most similar
    /// to `query` under `strategy`.
    pub fn new(
        table: Arc<Table>,
        index: &VectorIndex,
        query: &[f32],
        k: usize,
        strategy: VectorStrategy,
        batch_size: Option<usize>,
    ) -> Self {
        let positions = index.search(query, k, strategy);
        let result_rows = positions.len();
        let mut inner = IndexScan::new(table, positions);
        if let Some(n) = batch_size {
            inner = inner.with_batch_size(n);
        }
        Self {
            inner,
            strategy,
            result_rows,
        }
    }

    /// The physical strategy this operator ran with.
    pub fn strategy(&self) -> VectorStrategy {
        self.strategy
    }

    /// Number of rows the search selected (≤ k).
    pub fn result_rows(&self) -> usize {
        self.result_rows
    }
}

impl Operator for VectorTopK {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        self.inner.next()
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, StorageError> {
        self.inner.next_batch()
    }

    fn batch_capacity(&self) -> usize {
        self.inner.batch_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collect, Column};
    use kath_vector::seeded_unit_vector;

    #[test]
    fn codec_round_trips_and_rejects_bad_lengths() {
        let v = seeded_unit_vector(9);
        let bytes = encode_embedding(&v);
        assert_eq!(bytes.len(), v.len() * 4);
        assert_eq!(decode_embedding(&bytes).unwrap(), v);
        assert_eq!(decode_embedding(&[]).unwrap(), Vec::<f32>::new());
        assert!(decode_embedding(&bytes[..7]).is_none());
    }

    fn docs_table(n: usize) -> Table {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("emb", DataType::Blob),
        ])
        .unwrap();
        let mut t = Table::new("docs", schema);
        for i in 0..n as u64 {
            t.push(vec![
                Value::Int(i as i64),
                Value::Blob(encode_embedding(&seeded_unit_vector(i % 5 + 100))),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn flat_search_matches_naive_ranking() {
        let t = docs_table(50);
        let ix = VectorIndex::build(&t, "emb").unwrap();
        let query = seeded_unit_vector(102);
        let got = ix.search(&query, 7, VectorStrategy::Flat);
        // Naive reference: score every row, stable-sort descending.
        let mut naive: Vec<(usize, f32)> = (0..50usize)
            .map(|i| {
                let Value::Blob(b) = &t.rows()[i][1] else {
                    unreachable!()
                };
                (i, cosine(&query, &decode_embedding(b).unwrap()))
            })
            .collect();
        naive.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let want: Vec<usize> = naive.iter().take(7).map(|(i, _)| *i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn unscored_rows_pad_in_row_order() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("emb", DataType::Blob),
        ])
        .unwrap();
        let mut t = Table::new("docs", schema);
        let good = encode_embedding(&seeded_unit_vector(1));
        t.push(vec![Value::Int(0), Value::Null]).unwrap();
        t.push(vec![Value::Int(1), Value::Blob(good.clone())])
            .unwrap();
        t.push(vec![Value::Int(2), Value::Blob(vec![1, 2, 3])]) // corrupt
            .unwrap();
        t.push(vec![
            Value::Int(3),
            Value::Blob(encode_embedding(&[f32::NAN; 4])), // non-finite
        ])
        .unwrap();
        // Finite components whose squared norm overflows f32: cosine is
        // NaN against every query, so the row must be unscored — dropped
        // from ranking but still padded in, like the fallback's NULL tail.
        t.push(vec![
            Value::Int(4),
            Value::Blob(encode_embedding(&[2.0e19; 4])),
        ])
        .unwrap();
        let ix = VectorIndex::build(&t, "emb").unwrap();
        assert_eq!(ix.entries().len(), 1);
        assert_eq!(ix.unscored(), &[0, 2, 3, 4]);
        // k beyond the scored rows pads with unscored rows in row order —
        // the same tail a stable full sort puts after the NULL scores.
        assert_eq!(
            ix.search(&seeded_unit_vector(1), 10, VectorStrategy::Flat),
            vec![1, 0, 2, 3, 4]
        );
    }

    #[test]
    fn str_columns_index_through_the_canonical_embedder() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("body", DataType::Str),
        ])
        .unwrap();
        let mut t = Table::new("docs", schema);
        for (i, s) in ["gun fight", "calm tea garden", "murder weapon"]
            .iter()
            .enumerate()
        {
            t.push(vec![Value::Int(i as i64), Value::Str(s.to_string())])
                .unwrap();
        }
        let ix = VectorIndex::build(&t, "body").unwrap();
        let top = ix.search(&embed_query("shootout"), 2, VectorStrategy::Flat);
        assert!(!top.contains(&1), "calm text must not match: {top:?}");
    }

    #[test]
    fn non_embedding_columns_are_rejected() {
        let t = docs_table(3);
        assert!(matches!(
            VectorIndex::build(&t, "id"),
            Err(StorageError::TypeMismatch { .. })
        ));
        assert!(VectorIndex::build(&t, "missing").is_err());
    }

    #[test]
    fn ivf_strategy_is_built_lazily_and_searches() {
        let t = docs_table(300);
        let ix = VectorIndex::build(&t, "emb").unwrap();
        assert!(ix.ivf.read().is_none(), "IVF must not build eagerly");
        let query = seeded_unit_vector(103);
        let approx = ix.search(&query, 5, VectorStrategy::Ivf);
        assert!(ix.ivf.read().is_some());
        assert_eq!(approx.len(), 5);
        // The clustered corpus is easy: IVF agrees with exact on the top hit.
        let exact = ix.search(&query, 5, VectorStrategy::Flat);
        assert_eq!(approx[0], exact[0]);
    }

    #[test]
    fn cost_model_crossover_prefers_flat_small_ivf_large() {
        assert_eq!(preferred_vector_strategy(0), VectorStrategy::Flat);
        assert_eq!(preferred_vector_strategy(1000), VectorStrategy::Flat);
        assert_eq!(preferred_vector_strategy(100_000), VectorStrategy::Ivf);
        // The curve crosses exactly once.
        let mut flips = 0;
        let mut last = preferred_vector_strategy(1);
        for rows in (1..200_000).step_by(97) {
            let s = preferred_vector_strategy(rows);
            if s != last {
                flips += 1;
                last = s;
            }
        }
        assert_eq!(flips, 1, "strategy choice must cross exactly once");
    }

    #[test]
    fn topk_operator_streams_rank_order() {
        let t = Arc::new(docs_table(40));
        let ix = VectorIndex::build(&t, "emb").unwrap();
        let query = seeded_unit_vector(101);
        let want = ix.search(&query, 6, VectorStrategy::Flat);
        let op = VectorTopK::new(
            Arc::clone(&t),
            &ix,
            &query,
            6,
            VectorStrategy::Flat,
            Some(4),
        );
        assert_eq!(op.strategy(), VectorStrategy::Flat);
        assert_eq!(op.result_rows(), 6);
        let out = collect("top", Box::new(op)).unwrap();
        let ids: Vec<i64> = out.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        let want_ids: Vec<i64> = want.into_iter().map(|p| p as i64).collect();
        assert_eq!(ids, want_ids);
    }

    #[test]
    fn per_morsel_topk_merges_to_serial_result() {
        let t = docs_table(200);
        let ix = VectorIndex::build(&t, "emb").unwrap();
        let query = seeded_unit_vector(104);
        let serial = ix.search(&query, 9, VectorStrategy::Flat);
        // Split the entries at arbitrary boundaries; local top-k per chunk,
        // then the deterministic merge.
        for chunk in [7usize, 64, 199] {
            let mut candidates = Vec::new();
            for part in ix.entries().chunks(chunk) {
                candidates.extend(top_k_entries(part, &query, 9));
            }
            let merged: Vec<usize> = merge_top_k(candidates, 9)
                .into_iter()
                .map(|(p, _)| p)
                .collect();
            assert_eq!(merged, serial, "chunk size {chunk}");
        }
    }
}
