//! Column and schema definitions.

use crate::{DataType, StorageError, Value};
use std::fmt;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (unique within a schema).
    pub name: String,
    /// Declared type; `Any` admits every value.
    pub dtype: DataType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

impl Column {
    /// A nullable column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Self {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }

    /// A NOT NULL column.
    pub fn required(name: impl Into<String>, dtype: DataType) -> Self {
        Self {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }

    /// Whether `value` is admissible for this column.
    pub fn admits(&self, value: &Value) -> bool {
        if value.is_null() {
            return self.nullable;
        }
        match self.dtype {
            DataType::Any => true,
            // Int columns accept integral floats produced by generated
            // function bodies; everything else must match exactly.
            DataType::Int => matches!(value, Value::Int(_)),
            DataType::Float => matches!(value, Value::Int(_) | Value::Float(_)),
            dt => value.data_type() == dt,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema from columns; duplicate names are rejected.
    pub fn new(columns: Vec<Column>) -> Result<Self, StorageError> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(StorageError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Self { columns })
    }

    /// Shorthand: builds a schema of nullable columns from `(name, type)`.
    pub fn of(cols: &[(&str, DataType)]) -> Self {
        Self::new(
            cols.iter()
                .map(|(n, t)| Column::new(*n, *t))
                .collect::<Vec<_>>(),
        )
        .expect("static schema literals must not repeat column names")
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Index of a column by name, as an error-carrying lookup.
    pub fn resolve(&self, name: &str) -> Result<usize, StorageError> {
        self.index_of(name)
            .ok_or_else(|| StorageError::UnknownColumn(name.to_string()))
    }

    /// Column by index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// All column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Validates a row against this schema (arity + per-column types).
    pub fn check_row(&self, row: &[Value]) -> Result<(), StorageError> {
        if row.len() != self.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.arity(),
                got: row.len(),
            });
        }
        for (col, val) in self.columns.iter().zip(row) {
            if !col.admits(val) {
                return Err(StorageError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.dtype,
                    got: val.data_type(),
                });
            }
        }
        Ok(())
    }

    /// A new schema keeping the columns at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }

    /// Concatenates two schemas (for joins); right-side duplicate names get a
    /// disambiguating prefix, mirroring what the paper's intermediate
    /// materialized views do.
    pub fn join(&self, right: &Schema, right_prefix: &str) -> Schema {
        let mut columns = self.columns.clone();
        for c in &right.columns {
            let mut name = c.name.clone();
            // Keep prepending the prefix until the name is unique; repeated
            // self-joins can otherwise collide on the first-level prefix.
            while columns.iter().any(|e| e.name == name) {
                name = format!("{right_prefix}.{name}");
            }
            columns.push(Column {
                name,
                dtype: c.dtype,
                nullable: c.nullable,
            });
        }
        Schema { columns }
    }

    /// Appends a column, disambiguating on clash.
    pub fn with_column(&self, col: Column) -> Schema {
        let mut columns = self.columns.clone();
        if columns.iter().any(|c| c.name == col.name) {
            let mut i = 2;
            let mut name = format!("{}_{}", col.name, i);
            while columns.iter().any(|c| c.name == name) {
                i += 1;
                name = format!("{}_{}", col.name, i);
            }
            columns.push(Column { name, ..col });
        } else {
            columns.push(col);
        }
        Schema { columns }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.dtype)?;
            if !c.nullable {
                write!(f, " NOT NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicate_columns() {
        let err = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("a", DataType::Str),
        ]);
        assert!(matches!(err, Err(StorageError::DuplicateColumn(_))));
    }

    #[test]
    fn check_row_validates_arity_and_types() {
        let s = Schema::of(&[("id", DataType::Int), ("name", DataType::Str)]);
        assert!(s
            .check_row(&[Value::Int(1), Value::Str("x".into())])
            .is_ok());
        assert!(s.check_row(&[Value::Int(1)]).is_err());
        assert!(s
            .check_row(&[Value::Str("bad".into()), Value::Str("x".into())])
            .is_err());
    }

    #[test]
    fn nullable_controls_null_admission() {
        let s = Schema::new(vec![Column::required("id", DataType::Int)]).unwrap();
        assert!(s.check_row(&[Value::Null]).is_err());
        let s2 = Schema::of(&[("id", DataType::Int)]);
        assert!(s2.check_row(&[Value::Null]).is_ok());
    }

    #[test]
    fn float_columns_accept_ints() {
        let s = Schema::of(&[("score", DataType::Float)]);
        assert!(s.check_row(&[Value::Int(1)]).is_ok());
    }

    #[test]
    fn join_disambiguates_duplicate_names() {
        let left = Schema::of(&[("id", DataType::Int), ("title", DataType::Str)]);
        let right = Schema::of(&[("id", DataType::Int), ("year", DataType::Int)]);
        let joined = left.join(&right, "r");
        assert_eq!(joined.names(), vec!["id", "title", "r.id", "year"]);
    }

    #[test]
    fn with_column_disambiguates() {
        let s = Schema::of(&[("x", DataType::Int)]);
        let s2 = s.with_column(Column::new("x", DataType::Int));
        assert_eq!(s2.names(), vec!["x", "x_2"]);
    }
}
