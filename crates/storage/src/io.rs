//! The I/O seam: every file operation of the durability path (WAL appends,
//! checkpoint writes, page reads, snapshot housekeeping) goes through an
//! [`Io`] handle instead of calling `std::fs` directly.
//!
//! The handle dispatches to an [`IoBackend`]: [`RealIo`] (plain `std::fs`)
//! in production, or a seeded [`FaultyIo`] that injects errors, short
//! writes, ENOSPC, and fsync failures at chosen or probabilistic operation
//! counts. The chaos suites drive every fault schedule through the same
//! code paths a real disk failure would take, so the crash-safety
//! invariant — *clean error or prefix-of-committed-state, never
//! panic/corruption/acknowledged-then-lost write* — is tested, not hoped.
//!
//! Faults are classified **transient** (interrupted/timeout-shaped errors a
//! retry may clear) or **permanent** (everything else, including ENOSPC).
//! WAL appends and checkpoint writes wrap their syscalls in
//! [`with_retry`]: a bounded retry-with-backoff loop that only re-attempts
//! transient failures. Both WAL appends (rewrite at a fixed offset) and
//! checkpoint writes (temp file + atomic rename) are idempotent, so a
//! retry after a short write cannot duplicate or interleave bytes.
//!
//! The `KATHDB_FAULTS` environment variable (test-only; see
//! `docs/robustness.md`) installs a `FaultyIo` on every
//! [`Io::from_env`]-constructed handle — the facade's buffer pool and
//! durability subsystem share one such handle per database.

use parking_lot::{Mutex, RwLock};
use std::fmt;
use std::io;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Environment variable installing a fault-injection backend on every
/// [`Io::from_env`] handle. **Test-only**: never set it on a database you
/// care about. See [`FaultPlan::parse`] for the spec format.
pub const FAULTS_ENV: &str = "KATHDB_FAULTS";

/// The operation classes a fault schedule can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// Whole-file reads and directory listings.
    Read,
    /// File writes (whole-file or at an offset).
    Write,
    /// File and directory fsyncs.
    Fsync,
    /// Renames (the commit point of atomic writes and snapshots).
    Rename,
    /// File and directory removal (pruning and sweeping).
    Unlink,
    /// Truncation (torn-tail repair at WAL open).
    Truncate,
    /// Directory creation.
    Dir,
}

impl IoOp {
    fn parse(s: &str) -> Option<IoOp> {
        Some(match s {
            "read" => IoOp::Read,
            "write" => IoOp::Write,
            "fsync" => IoOp::Fsync,
            "rename" => IoOp::Rename,
            "unlink" => IoOp::Unlink,
            "truncate" => IoOp::Truncate,
            "dir" => IoOp::Dir,
            _ => return None,
        })
    }
}

/// What an injected fault looks like to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// An interrupted-shaped error a bounded retry may clear.
    Transient,
    /// A hard I/O error; retrying is pointless.
    Permanent,
    /// Out of disk space (permanent by classification).
    Enospc,
    /// Writes only: a prefix of the data lands on disk, then the operation
    /// errors — the torn-write shape crash recovery must tolerate.
    ShortWrite,
}

impl FaultKind {
    const ALL: [FaultKind; 4] = [
        FaultKind::Transient,
        FaultKind::Permanent,
        FaultKind::Enospc,
        FaultKind::ShortWrite,
    ];

    fn parse(s: &str) -> Option<FaultKind> {
        Some(match s {
            "transient" => FaultKind::Transient,
            "permanent" => FaultKind::Permanent,
            "enospc" => FaultKind::Enospc,
            "short" | "shortwrite" => FaultKind::ShortWrite,
            _ => return None,
        })
    }

    /// The error this fault surfaces as (short writes degrade to transient
    /// on operations that carry no data).
    fn error(self) -> io::Error {
        match self {
            FaultKind::Transient | FaultKind::ShortWrite => io::Error::new(
                io::ErrorKind::Interrupted,
                "injected transient fault".to_string(),
            ),
            FaultKind::Permanent => io::Error::other("injected permanent fault".to_string()),
            FaultKind::Enospc => {
                io::Error::new(io::ErrorKind::StorageFull, "injected ENOSPC".to_string())
            }
        }
    }
}

/// Whether an I/O error is worth retrying. Injected transient faults use
/// [`io::ErrorKind::Interrupted`]; real interrupted/timeout-shaped errors
/// classify the same way. Everything else — ENOSPC, permission, hard I/O
/// errors — is permanent and surfaces immediately.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// Bounded retry-with-backoff for transient faults, the policy WAL appends
/// and checkpoint writes run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included; min 1).
    pub attempts: u32,
    /// Sleep before the first retry; doubles per retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            backoff: Duration::from_micros(500),
        }
    }
}

/// Runs `f`, retrying **transient** failures (see [`is_transient`]) up to
/// `policy.attempts` total attempts with doubling backoff. The operation
/// must be idempotent — the WAL rewrites at a fixed offset and checkpoint
/// writes recreate their temp file, so both qualify.
pub fn with_retry<T>(policy: &RetryPolicy, mut f: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut delay = policy.backoff;
    let mut attempt = 1u32;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if attempt < policy.attempts.max(1) && is_transient(&e) => {
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// The file operations the durability path performs. Implementations are
/// path-based (no long-lived handles), which keeps every operation
/// individually injectable and makes retries idempotent.
pub trait IoBackend: Send + Sync + fmt::Debug {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Writes `data` at `offset`, creating the file if absent. Bytes past
    /// the written range are left untouched (no truncation).
    fn write_at(&self, path: &Path, offset: u64, data: &[u8]) -> io::Result<()>;
    /// Creates (or truncates) the file with exactly `data` (no fsync).
    fn write_file(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Fsyncs a file.
    fn fsync(&self, path: &Path) -> io::Result<()>;
    /// Fsyncs a directory (required for a rename to survive power loss).
    fn fsync_dir(&self, path: &Path) -> io::Result<()>;
    /// Truncates (or extends) a file to `len` bytes.
    fn set_len(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Renames a file or directory (the atomic commit point).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Removes a directory tree.
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Lists a directory's entry paths (unsorted).
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    /// Whether the path exists (never injected: existence probes steer
    /// control flow, they do not touch data).
    fn exists(&self, path: &Path) -> bool;
    /// Injection counters, when this backend injects faults.
    fn fault_stats(&self) -> Option<FaultStats> {
        None
    }
    /// One-line description for status surfaces (`\faults`).
    fn describe(&self) -> String;
}

/// The production backend: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl IoBackend for RealIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_at(&self, path: &Path, offset: u64, data: &[u8]) -> io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(data)
    }

    fn write_file(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(data)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .read(true)
            .open(path)?
            .sync_all()
    }

    fn fsync_dir(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .write(true)
            .open(path)?
            .set_len(len)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_dir_all(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn describe(&self) -> String {
        "real".to_string()
    }
}

/// A fault schedule: which operations are eligible, and when/what to
/// inject. Deterministic for a given seed and (single-threaded) operation
/// order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// RNG seed for probabilistic injection.
    pub seed: u64,
    /// Per-eligible-operation fault probability in `[0, 1]`.
    pub probability: f64,
    /// Inject exactly at these 1-based eligible-operation counts.
    pub at_ops: Vec<(u64, FaultKind)>,
    /// Kinds drawn probabilistically (empty = all kinds).
    pub kinds: Vec<FaultKind>,
    /// Eligible operation classes (empty = all classes).
    pub ops: Vec<IoOp>,
    /// Stop injecting after this many faults (None = unbounded).
    pub max_faults: Option<u64>,
}

impl FaultPlan {
    /// A schedule injecting each eligible operation with probability `p`.
    pub fn probabilistic(seed: u64, p: f64) -> FaultPlan {
        FaultPlan {
            seed,
            probability: p,
            ..FaultPlan::default()
        }
    }

    /// A schedule injecting `kind` exactly at the `n`-th eligible
    /// operation (1-based).
    pub fn at(n: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            at_ops: vec![(n, kind)],
            ..FaultPlan::default()
        }
    }

    /// Restricts the schedule to the given operation classes.
    pub fn on_ops(mut self, ops: &[IoOp]) -> FaultPlan {
        self.ops = ops.to_vec();
        self
    }

    /// Restricts probabilistic draws to the given kinds.
    pub fn with_kinds(mut self, kinds: &[FaultKind]) -> FaultPlan {
        self.kinds = kinds.to_vec();
        self
    }

    /// Caps the number of injected faults.
    pub fn limit(mut self, n: u64) -> FaultPlan {
        self.max_faults = Some(n);
        self
    }

    /// Parses a `KATHDB_FAULTS` / `\faults` spec: comma-separated `key=value`
    /// pairs — `seed=<u64>`, `p=<f64>`, `kinds=<k>|<k>…`, `ops=<op>|<op>…`,
    /// `at=<n>:<kind>`, `max=<u64>`. Example:
    /// `seed=42,p=0.05,kinds=transient|enospc,ops=write|fsync`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{part}'"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("bad seed '{value}'"))?;
                }
                "p" => {
                    let p: f64 = value.parse().map_err(|_| format!("bad p '{value}'"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("p must be in [0,1], got {p}"));
                    }
                    plan.probability = p;
                }
                "kinds" => {
                    for k in value.split('|') {
                        plan.kinds.push(
                            FaultKind::parse(k.trim()).ok_or_else(|| format!("bad kind '{k}'"))?,
                        );
                    }
                }
                "ops" => {
                    for o in value.split('|') {
                        plan.ops
                            .push(IoOp::parse(o.trim()).ok_or_else(|| format!("bad op '{o}'"))?);
                    }
                }
                "at" => {
                    let (n, kind) = match value.split_once(':') {
                        Some((n, k)) => (
                            n.parse().map_err(|_| format!("bad op index '{n}'"))?,
                            FaultKind::parse(k.trim()).ok_or_else(|| format!("bad kind '{k}'"))?,
                        ),
                        None => (
                            value
                                .parse()
                                .map_err(|_| format!("bad op index '{value}'"))?,
                            FaultKind::Permanent,
                        ),
                    };
                    plan.at_ops.push((n, kind));
                }
                "max" => {
                    plan.max_faults =
                        Some(value.parse().map_err(|_| format!("bad max '{value}'"))?);
                }
                _ => return Err(format!("unknown fault key '{key}'")),
            }
        }
        Ok(plan)
    }
}

/// Injection counters of a [`FaultyIo`] backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Eligible operations observed.
    pub ops: u64,
    /// Faults injected.
    pub injected: u64,
}

/// A fault-injecting backend: decides per eligible operation (seeded,
/// deterministic) whether to inject, and otherwise delegates to
/// [`RealIo`]. Short writes land a prefix of the data before erroring, so
/// torn frames and torn pages genuinely appear on disk.
#[derive(Debug)]
pub struct FaultyIo {
    plan: FaultPlan,
    inner: RealIo,
    ops: AtomicU64,
    injected: AtomicU64,
    rng: Mutex<u64>,
}

impl FaultyIo {
    /// A backend injecting per `plan`.
    pub fn new(plan: FaultPlan) -> FaultyIo {
        // SplitMix64 wants a non-zero-ish seed; mix the raw seed once.
        let state = plan.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        FaultyIo {
            plan,
            inner: RealIo,
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            rng: Mutex::new(state),
        }
    }

    /// SplitMix64: deterministic, dependency-free uniform draw in `[0,1)`.
    fn next_f64(&self) -> f64 {
        let mut state = self.rng.lock();
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether to inject on this operation, and what.
    fn decide(&self, op: IoOp) -> Option<FaultKind> {
        if !self.plan.ops.is_empty() && !self.plan.ops.contains(&op) {
            return None;
        }
        let n = self.ops.fetch_add(1, Ordering::Relaxed) + 1; // lint: relaxed-ok — the RMW keeps the fault-clock tick exact; no other memory rides on it
        if let Some(max) = self.plan.max_faults {
            // lint: relaxed-ok — injection cap is advisory; a racy read at worst injects one extra fault
            if self.injected.load(Ordering::Relaxed) >= max {
                return None;
            }
        }
        let kind = if let Some((_, k)) = self.plan.at_ops.iter().find(|(at, _)| *at == n) {
            Some(*k)
        } else if self.plan.probability > 0.0 && self.next_f64() < self.plan.probability {
            let kinds = if self.plan.kinds.is_empty() {
                &FaultKind::ALL[..]
            } else {
                &self.plan.kinds[..]
            };
            let idx = (self.next_f64() * kinds.len() as f64) as usize;
            Some(kinds[idx.min(kinds.len() - 1)])
        } else {
            None
        };
        if kind.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok — monotonic injected-fault counter
        }
        kind
    }

    /// Injects on non-write operations: any fault kind becomes its error.
    fn gate(&self, op: IoOp) -> io::Result<()> {
        match self.decide(op) {
            Some(kind) => Err(kind.error()),
            None => Ok(()),
        }
    }
}

impl IoBackend for FaultyIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.gate(IoOp::Read)?;
        self.inner.read(path)
    }

    fn write_at(&self, path: &Path, offset: u64, data: &[u8]) -> io::Result<()> {
        match self.decide(IoOp::Write) {
            Some(FaultKind::ShortWrite) => {
                // Land a prefix, then fail: a torn write at this offset.
                let cut = data.len() / 2;
                let _ = self.inner.write_at(path, offset, &data[..cut]);
                Err(FaultKind::ShortWrite.error())
            }
            Some(kind) => Err(kind.error()),
            None => self.inner.write_at(path, offset, data),
        }
    }

    fn write_file(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.decide(IoOp::Write) {
            Some(FaultKind::ShortWrite) => {
                let cut = data.len() / 2;
                let _ = self.inner.write_file(path, &data[..cut]);
                Err(FaultKind::ShortWrite.error())
            }
            Some(kind) => Err(kind.error()),
            None => self.inner.write_file(path, data),
        }
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        self.gate(IoOp::Fsync)?;
        self.inner.fsync(path)
    }

    fn fsync_dir(&self, path: &Path) -> io::Result<()> {
        self.gate(IoOp::Fsync)?;
        self.inner.fsync_dir(path)
    }

    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        self.gate(IoOp::Truncate)?;
        self.inner.set_len(path, len)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate(IoOp::Rename)?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.gate(IoOp::Unlink)?;
        self.inner.remove_file(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        self.gate(IoOp::Unlink)?;
        self.inner.remove_dir_all(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.gate(IoOp::Dir)?;
        self.inner.create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.gate(IoOp::Read)?;
        self.inner.read_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn fault_stats(&self) -> Option<FaultStats> {
        Some(FaultStats {
            ops: self.ops.load(Ordering::Relaxed), // lint: relaxed-ok — stats snapshot; approximate reads are fine
            injected: self.injected.load(Ordering::Relaxed), // lint: relaxed-ok — stats snapshot; approximate reads are fine
        })
    }

    fn describe(&self) -> String {
        format!(
            "faulty (seed={}, p={}, {} chosen op(s), max={:?})",
            self.plan.seed,
            self.plan.probability,
            self.plan.at_ops.len(),
            self.plan.max_faults
        )
    }
}

/// A cheap-to-clone handle to the database's I/O backend. The backend is
/// swappable at runtime (the `\faults` REPL knob), so one handle is shared
/// by the buffer pool, the WAL, and the checkpoint machinery of a
/// database.
#[derive(Clone, Default)]
pub struct Io {
    inner: Arc<IoCell>,
}

struct IoCell {
    backend: RwLock<Arc<dyn IoBackend>>,
}

impl Default for IoCell {
    fn default() -> Self {
        IoCell {
            backend: RwLock::new(Arc::new(RealIo)),
        }
    }
}

impl fmt::Debug for Io {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Io({})", self.describe())
    }
}

impl Io {
    /// A handle over the production backend.
    pub fn real() -> Io {
        Io::default()
    }

    /// A handle over an explicit backend.
    pub fn with_backend(backend: Arc<dyn IoBackend>) -> Io {
        let io = Io::default();
        io.set_backend(backend);
        io
    }

    /// A handle honouring [`FAULTS_ENV`] (test-only): a valid spec installs
    /// a [`FaultyIo`], anything else (unset, empty, `off`) is the real
    /// backend. A malformed spec is reported on stderr and ignored.
    pub fn from_env() -> Io {
        let io = Io::default();
        if let Ok(spec) = std::env::var(FAULTS_ENV) {
            let spec = spec.trim();
            if !spec.is_empty() && spec != "off" {
                match FaultPlan::parse(spec) {
                    Ok(plan) => io.install_faults(plan),
                    Err(e) => eprintln!("ignoring malformed {FAULTS_ENV}: {e}"),
                }
            }
        }
        io
    }

    /// Swaps in a backend (all sharers of this handle see it immediately).
    pub fn set_backend(&self, backend: Arc<dyn IoBackend>) {
        *self.inner.backend.write() = backend;
    }

    /// Installs a fresh [`FaultyIo`] running `plan`.
    pub fn install_faults(&self, plan: FaultPlan) {
        self.set_backend(Arc::new(FaultyIo::new(plan)));
    }

    /// Restores the real backend.
    pub fn clear_faults(&self) {
        self.set_backend(Arc::new(RealIo));
    }

    /// Injection counters, when a fault backend is installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.backend().fault_stats()
    }

    /// One-line backend description (`\faults`).
    pub fn describe(&self) -> String {
        self.backend().describe()
    }

    fn backend(&self) -> Arc<dyn IoBackend> {
        Arc::clone(&self.inner.backend.read())
    }

    /// Reads a whole file.
    pub fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.backend().read(path)
    }

    /// Reads a whole file, mapping a missing file to `None`.
    pub fn read_opt(&self, path: &Path) -> io::Result<Option<Vec<u8>>> {
        match self.backend().read(path) {
            Ok(d) => Ok(Some(d)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Writes `data` at `offset` (creating the file if absent).
    pub fn write_at(&self, path: &Path, offset: u64, data: &[u8]) -> io::Result<()> {
        self.backend().write_at(path, offset, data)
    }

    /// Creates (or truncates) the file with exactly `data` (no fsync).
    pub fn write_file(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.backend().write_file(path, data)
    }

    /// Fsyncs a file.
    pub fn fsync(&self, path: &Path) -> io::Result<()> {
        self.backend().fsync(path)
    }

    /// Fsyncs a directory.
    pub fn fsync_dir(&self, path: &Path) -> io::Result<()> {
        self.backend().fsync_dir(path)
    }

    /// Truncates (or extends) a file to `len` bytes.
    pub fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        self.backend().set_len(path, len)
    }

    /// Renames a file or directory.
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.backend().rename(from, to)
    }

    /// Removes a file.
    pub fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.backend().remove_file(path)
    }

    /// Removes a directory tree.
    pub fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        self.backend().remove_dir_all(path)
    }

    /// Creates a directory and its parents.
    pub fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.backend().create_dir_all(path)
    }

    /// Lists a directory's entry paths (unsorted).
    pub fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.backend().read_dir(path)
    }

    /// Whether the path exists.
    pub fn exists(&self, path: &Path) -> bool {
        self.backend().exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kathdb_io_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_backend_round_trips() {
        let dir = tmp("real");
        let io = Io::real();
        let p = dir.join("a.bin");
        io.write_file(&p, b"hello").unwrap();
        io.fsync(&p).unwrap();
        assert_eq!(io.read(&p).unwrap(), b"hello");
        io.write_at(&p, 1, b"a").unwrap();
        assert_eq!(io.read(&p).unwrap(), b"hallo");
        io.set_len(&p, 2).unwrap();
        assert_eq!(io.read(&p).unwrap(), b"ha");
        let q = dir.join("b.bin");
        io.rename(&p, &q).unwrap();
        assert!(!io.exists(&p));
        assert!(io.exists(&q));
        assert_eq!(io.read_dir(&dir).unwrap(), vec![q.clone()]);
        assert!(io.read_opt(&p).unwrap().is_none());
        io.remove_file(&q).unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn chosen_op_injects_exactly_there() {
        let dir = tmp("chosen");
        let io = Io::real();
        io.install_faults(FaultPlan::at(2, FaultKind::Permanent));
        let p = dir.join("x");
        io.write_file(&p, b"1").unwrap(); // op 1: fine
        let err = io.write_file(&p, b"2").unwrap_err(); // op 2: injected
        assert!(!is_transient(&err));
        io.write_file(&p, b"3").unwrap(); // op 3: fine again
        let stats = io.fault_stats().unwrap();
        assert_eq!(stats.ops, 3);
        assert_eq!(stats.injected, 1);
        io.clear_faults();
        assert!(io.fault_stats().is_none());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn probabilistic_schedule_is_deterministic_per_seed() {
        let outcomes = |seed: u64| -> Vec<bool> {
            let dir = tmp(&format!("det{seed}"));
            let io = Io::real();
            io.install_faults(FaultPlan::probabilistic(seed, 0.5));
            let p = dir.join("x");
            let v: Vec<bool> = (0..32).map(|_| io.write_file(&p, b"d").is_ok()).collect();
            let _ = std::fs::remove_dir_all(dir);
            v
        };
        assert_eq!(outcomes(7), outcomes(7));
        assert_ne!(outcomes(7), outcomes(8), "seeds must differ");
    }

    #[test]
    fn short_write_lands_a_prefix() {
        let dir = tmp("short");
        let io = Io::real();
        io.install_faults(FaultPlan::at(1, FaultKind::ShortWrite));
        let p = dir.join("x");
        let err = io.write_file(&p, b"0123456789").unwrap_err();
        assert!(is_transient(&err), "short writes retry as transient");
        assert_eq!(std::fs::read(&p).unwrap(), b"01234");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn retry_clears_transient_but_not_permanent() {
        let dir = tmp("retry");
        let io = Io::real();
        let p = dir.join("x");
        let policy = RetryPolicy::default();
        io.install_faults(FaultPlan::at(1, FaultKind::Transient));
        with_retry(&policy, || io.write_file(&p, b"ok")).unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"ok");
        io.install_faults(FaultPlan {
            at_ops: vec![(1, FaultKind::Enospc)],
            ..FaultPlan::default()
        });
        let err = with_retry(&policy, || io.write_file(&p, b"no")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // Exactly one attempt was made: ENOSPC is permanent.
        assert_eq!(io.fault_stats().unwrap().ops, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn op_class_restriction_skips_other_ops() {
        let dir = tmp("class");
        let io = Io::real();
        io.install_faults(FaultPlan::probabilistic(1, 1.0).on_ops(&[IoOp::Fsync]));
        let p = dir.join("x");
        io.write_file(&p, b"d").unwrap(); // writes are not eligible
        assert!(io.fsync(&p).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn spec_parsing_round_trips() {
        let plan = FaultPlan::parse("seed=42,p=0.05,kinds=transient|enospc,ops=write|fsync,max=3")
            .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.probability, 0.05);
        assert_eq!(plan.kinds, vec![FaultKind::Transient, FaultKind::Enospc]);
        assert_eq!(plan.ops, vec![IoOp::Write, IoOp::Fsync]);
        assert_eq!(plan.max_faults, Some(3));
        let plan = FaultPlan::parse("at=12:short").unwrap();
        assert_eq!(plan.at_ops, vec![(12, FaultKind::ShortWrite)]);
        let plan = FaultPlan::parse("at=3").unwrap();
        assert_eq!(plan.at_ops, vec![(3, FaultKind::Permanent)]);
        assert!(FaultPlan::parse("p=2.0").is_err());
        assert!(FaultPlan::parse("nope=1").is_err());
        assert!(FaultPlan::parse("p").is_err());
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }

    #[test]
    fn classification_is_transient_only_for_retryable_kinds() {
        assert!(is_transient(&FaultKind::Transient.error()));
        assert!(is_transient(&FaultKind::ShortWrite.error()));
        assert!(!is_transient(&FaultKind::Permanent.error()));
        assert!(!is_transient(&FaultKind::Enospc.error()));
    }
}
