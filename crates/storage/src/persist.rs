//! Binary table persistence.
//!
//! KathDB materializes intermediate views and persists them so the lineage
//! browser can show "the materialized view it came from" (§5) across
//! sessions. The format is a simple length-prefixed layout with a magic
//! header and version byte.

use crate::{Column, DataType, Row, Schema, StorageError, Table, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::Path;

const MAGIC: &[u8; 4] = b"KTBL";
const FORMAT_VERSION: u8 = 1;

/// Encodes a table into the KathDB binary table format.
pub fn encode_table(table: &Table) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u8(FORMAT_VERSION);
    put_str(&mut buf, table.name());
    buf.put_u32(table.schema().arity() as u32);
    for col in table.schema().columns() {
        put_str(&mut buf, &col.name);
        buf.put_u8(dtype_tag(col.dtype));
        buf.put_u8(col.nullable as u8);
    }
    buf.put_u64(table.len() as u64);
    for row in table.rows() {
        for v in row {
            put_value(&mut buf, v);
        }
    }
    buf.freeze()
}

/// Decodes a table from the binary format.
pub fn decode_table(mut data: &[u8]) -> Result<Table, StorageError> {
    let corrupt = |m: &str| StorageError::Corrupt(m.to_string());
    if data.len() < 5 || &data[..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    data.advance(4);
    let version = data.get_u8();
    if version != FORMAT_VERSION {
        return Err(corrupt("unsupported format version"));
    }
    let name = get_str(&mut data)?;
    if data.remaining() < 4 {
        return Err(corrupt("truncated column count"));
    }
    let arity = data.get_u32() as usize;
    if arity > 1 << 16 {
        return Err(corrupt("implausible column count"));
    }
    let mut cols = Vec::with_capacity(arity);
    for _ in 0..arity {
        let cname = get_str(&mut data)?;
        if data.remaining() < 2 {
            return Err(corrupt("truncated column descriptor"));
        }
        let dtype = dtype_from_tag(data.get_u8())?;
        let nullable = data.get_u8() != 0;
        cols.push(Column {
            name: cname,
            dtype,
            nullable,
        });
    }
    let schema = Schema::new(cols)?;
    if data.remaining() < 8 {
        return Err(corrupt("truncated row count"));
    }
    let rows = data.get_u64() as usize;
    let mut table = Table::new(name, schema);
    for _ in 0..rows {
        let mut row: Row = Vec::with_capacity(arity);
        for _ in 0..arity {
            row.push(get_value(&mut data)?);
        }
        table.push(row)?;
    }
    if data.has_remaining() {
        return Err(corrupt("trailing bytes after table payload"));
    }
    Ok(table)
}

/// Writes a table to `path`.
pub fn save_table(table: &Table, path: &Path) -> Result<(), StorageError> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, encode_table(table))?;
    Ok(())
}

/// Reads a table from `path`.
pub fn load_table(path: &Path) -> Result<Table, StorageError> {
    let data = std::fs::read(path)?;
    decode_table(&data)
}

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
        DataType::Blob => 4,
        DataType::Any => 5,
    }
}

fn dtype_from_tag(t: u8) -> Result<DataType, StorageError> {
    Ok(match t {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bool,
        4 => DataType::Blob,
        5 => DataType::Any,
        _ => return Err(StorageError::Corrupt(format!("unknown type tag {t}"))),
    })
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(data: &mut &[u8]) -> Result<String, StorageError> {
    if data.remaining() < 4 {
        return Err(StorageError::Corrupt("truncated string length".into()));
    }
    let len = data.get_u32() as usize;
    if data.remaining() < len {
        return Err(StorageError::Corrupt("truncated string payload".into()));
    }
    let s = std::str::from_utf8(&data[..len])
        .map_err(|_| StorageError::Corrupt("invalid utf-8".into()))?
        .to_string();
    data.advance(len);
    Ok(s)
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Int(i) => {
            buf.put_u8(1);
            buf.put_i64(*i);
        }
        Value::Float(f) => {
            buf.put_u8(2);
            buf.put_f64(*f);
        }
        Value::Str(s) => {
            buf.put_u8(3);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            buf.put_u8(4);
            buf.put_u8(*b as u8);
        }
        Value::Blob(b) => {
            buf.put_u8(5);
            buf.put_u32(b.len() as u32);
            buf.put_slice(b);
        }
    }
}

fn get_value(data: &mut &[u8]) -> Result<Value, StorageError> {
    let corrupt = |m: &str| StorageError::Corrupt(m.to_string());
    if !data.has_remaining() {
        return Err(corrupt("truncated value tag"));
    }
    Ok(match data.get_u8() {
        0 => Value::Null,
        1 => {
            if data.remaining() < 8 {
                return Err(corrupt("truncated int"));
            }
            Value::Int(data.get_i64())
        }
        2 => {
            if data.remaining() < 8 {
                return Err(corrupt("truncated float"));
            }
            Value::Float(data.get_f64())
        }
        3 => Value::Str(get_str(data)?),
        4 => {
            if !data.has_remaining() {
                return Err(corrupt("truncated bool"));
            }
            Value::Bool(data.get_u8() != 0)
        }
        5 => {
            if data.remaining() < 4 {
                return Err(corrupt("truncated blob length"));
            }
            let len = data.get_u32() as usize;
            if data.remaining() < len {
                return Err(corrupt("truncated blob payload"));
            }
            let b = data[..len].to_vec();
            data.advance(len);
            Value::Blob(b)
        }
        t => return Err(corrupt(&format!("unknown value tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let schema = Schema::of(&[
            ("id", DataType::Int),
            ("score", DataType::Float),
            ("title", DataType::Str),
            ("boring", DataType::Bool),
            ("pixels", DataType::Blob),
        ]);
        Table::from_rows(
            "films",
            schema,
            vec![
                vec![
                    1i64.into(),
                    0.999.into(),
                    "Guilty by Suspicion".into(),
                    true.into(),
                    Value::Blob(vec![1, 2, 3]),
                ],
                vec![
                    2i64.into(),
                    Value::Null,
                    "Clean and Sober".into(),
                    Value::Null,
                    Value::Blob(vec![]),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = table();
        let bytes = encode_table(&t);
        let back = decode_table(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("kathdb_persist_test");
        let path = dir.join("films.ktbl");
        let t = table();
        save_table(&t, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(back, t);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_corruption() {
        let t = table();
        let bytes = encode_table(&t);
        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(decode_table(&bad).is_err());
        // Truncation at every prefix must error, never panic.
        for cut in 0..bytes.len() {
            assert!(decode_table(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut long = bytes.to_vec();
        long.push(0);
        assert!(decode_table(&long).is_err());
    }

    #[test]
    fn empty_table_round_trips() {
        let t = Table::new("empty", Schema::of(&[("x", DataType::Any)]));
        let back = decode_table(&encode_table(&t)).unwrap();
        assert_eq!(back, t);
    }
}
