//! Binary table persistence.
//!
//! KathDB materializes intermediate views and persists them so the lineage
//! browser can show "the materialized view it came from" (§5) across
//! sessions, and the durability subsystem snapshots every catalog table in
//! this format at each checkpoint. The format is a simple length-prefixed
//! layout with a magic header, version byte, and — since format version 2 —
//! a CRC32 trailer over the entire encoding, so a torn or bit-flipped
//! snapshot file is detected instead of decoded into wrong rows.

use crate::io::{with_retry, Io, RetryPolicy};
use crate::wal::crc32;
use crate::{Column, DataType, Row, Schema, StorageError, Table, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::Path;

const MAGIC: &[u8; 4] = b"KTBL";
const FORMAT_VERSION: u8 = 2;

/// Encodes a table into the KathDB binary table format (KTBL v2: the v1
/// body followed by a CRC32 trailer over everything before it). Fails with
/// [`StorageError::TooLarge`] if any string or blob exceeds `u32::MAX`
/// bytes (the length prefix width) instead of silently truncating.
pub fn encode_table(table: &Table) -> Result<Bytes, StorageError> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u8(FORMAT_VERSION);
    put_str(&mut buf, table.name())?;
    buf.put_u32(table.schema().arity() as u32);
    for col in table.schema().columns() {
        put_str(&mut buf, &col.name)?;
        buf.put_u8(dtype_tag(col.dtype));
        buf.put_u8(col.nullable as u8);
    }
    buf.put_u64(table.len() as u64);
    for row in table.rows() {
        for v in row {
            put_value(&mut buf, v)?;
        }
    }
    let checksum = crc32(&buf);
    buf.put_u32(checksum);
    Ok(buf.freeze())
}

/// Decodes a table from the binary format. Accepts both v1 (no trailer,
/// written by earlier KathDB versions) and v2 (CRC32 trailer, verified
/// before any byte of the payload is interpreted).
pub fn decode_table(data: &[u8]) -> Result<Table, StorageError> {
    let corrupt = |m: &str| StorageError::Corrupt(m.to_string());
    if data.len() < 5 || &data[..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = data[4];
    let body = match version {
        1 => &data[5..],
        2 => {
            if data.len() < 9 {
                return Err(corrupt("truncated checksum trailer"));
            }
            let (payload, trailer) = data.split_at(data.len() - 4);
            let stored = u32::from_be_bytes(trailer.try_into().expect("4-byte trailer"));
            if crc32(payload) != stored {
                return Err(corrupt("table checksum mismatch"));
            }
            &payload[5..]
        }
        _ => return Err(corrupt("unsupported format version")),
    };
    decode_body(body)
}

fn decode_body(mut data: &[u8]) -> Result<Table, StorageError> {
    let corrupt = |m: &str| StorageError::Corrupt(m.to_string());
    let name = get_str(&mut data)?;
    if data.remaining() < 4 {
        return Err(corrupt("truncated column count"));
    }
    let arity = data.get_u32() as usize;
    if arity > 1 << 16 {
        return Err(corrupt("implausible column count"));
    }
    let mut cols = Vec::with_capacity(arity);
    for _ in 0..arity {
        let cname = get_str(&mut data)?;
        if data.remaining() < 2 {
            return Err(corrupt("truncated column descriptor"));
        }
        let dtype = dtype_from_tag(data.get_u8())?;
        let nullable = data.get_u8() != 0;
        cols.push(Column {
            name: cname,
            dtype,
            nullable,
        });
    }
    let schema = Schema::new(cols)?;
    if data.remaining() < 8 {
        return Err(corrupt("truncated row count"));
    }
    let rows = data.get_u64() as usize;
    let mut table = Table::new(name, schema);
    for _ in 0..rows {
        let mut row: Row = Vec::with_capacity(arity);
        for _ in 0..arity {
            row.push(get_value(&mut data)?);
        }
        table.push(row)?;
    }
    if data.has_remaining() {
        return Err(corrupt("trailing bytes after table payload"));
    }
    Ok(table)
}

/// Writes `bytes` to `path` atomically: the data goes to a temp file in the
/// same directory, is fsynced, and is then renamed into place, so a crash
/// mid-write can never leave a truncated file under the target name. The
/// containing directory is fsynced best-effort (required for the rename to
/// be durable on power loss; not supported on every filesystem).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
    atomic_write_with(&Io::real(), path, bytes)
}

/// [`atomic_write`] through an explicit [`Io`] handle. The temp-file write
/// and its fsync retry transient faults (the sequence is idempotent — each
/// attempt recreates the temp file from scratch); the rename is attempted
/// once, since its failure modes are not transient and a duplicate rename
/// could clobber a concurrent writer. On any failure the target file is
/// untouched and the temp file is cleaned up best-effort.
pub fn atomic_write_with(io: &Io, path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => {
            io.create_dir_all(d)?;
            d.to_path_buf()
        }
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| StorageError::Io(format!("no file name in {}", path.display())))?;
    let tmp = dir.join(format!(
        ".{}.{}.tmp",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let write = with_retry(&RetryPolicy::default(), || {
        io.write_file(&tmp, bytes)?;
        io.fsync(&tmp)
    });
    if let Err(e) = write {
        let _ = io.remove_file(&tmp);
        return Err(e.into());
    }
    if let Err(e) = io.rename(&tmp, path) {
        let _ = io.remove_file(&tmp);
        return Err(e.into());
    }
    let _ = io.fsync_dir(&dir);
    Ok(())
}

/// Writes a table to `path` atomically (temp file + fsync + rename).
pub fn save_table(table: &Table, path: &Path) -> Result<(), StorageError> {
    save_table_with(&Io::real(), table, path)
}

/// [`save_table`] through an explicit [`Io`] handle.
pub fn save_table_with(io: &Io, table: &Table, path: &Path) -> Result<(), StorageError> {
    atomic_write_with(io, path, &encode_table(table)?)
}

/// Reads a table from `path`.
pub fn load_table(path: &Path) -> Result<Table, StorageError> {
    load_table_with(&Io::real(), path)
}

/// [`load_table`] through an explicit [`Io`] handle.
pub fn load_table_with(io: &Io, path: &Path) -> Result<Table, StorageError> {
    let data = io.read(path)?;
    decode_table(&data)
}

pub(crate) fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
        DataType::Blob => 4,
        DataType::Any => 5,
    }
}

pub(crate) fn dtype_from_tag(t: u8) -> Result<DataType, StorageError> {
    Ok(match t {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bool,
        4 => DataType::Blob,
        5 => DataType::Any,
        _ => return Err(StorageError::Corrupt(format!("unknown type tag {t}"))),
    })
}

/// Checks that a length fits the u32 prefix of the binary formats; the
/// guard every string/blob encoder goes through so oversized payloads fail
/// loudly instead of round-tripping corrupt.
pub(crate) fn encodable_len(what: &str, len: usize) -> Result<u32, StorageError> {
    u32::try_from(len).map_err(|_| StorageError::TooLarge {
        what: what.to_string(),
        len: len as u64,
    })
}

pub(crate) fn put_str(buf: &mut BytesMut, s: &str) -> Result<(), StorageError> {
    buf.put_u32(encodable_len("string", s.len())?);
    buf.put_slice(s.as_bytes());
    Ok(())
}

pub(crate) fn get_str(data: &mut &[u8]) -> Result<String, StorageError> {
    if data.remaining() < 4 {
        return Err(StorageError::Corrupt("truncated string length".into()));
    }
    let len = data.get_u32() as usize;
    if data.remaining() < len {
        return Err(StorageError::Corrupt("truncated string payload".into()));
    }
    let s = std::str::from_utf8(&data[..len])
        .map_err(|_| StorageError::Corrupt("invalid utf-8".into()))?
        .to_string();
    data.advance(len);
    Ok(s)
}

pub(crate) fn put_value(buf: &mut BytesMut, v: &Value) -> Result<(), StorageError> {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Int(i) => {
            buf.put_u8(1);
            buf.put_i64(*i);
        }
        Value::Float(f) => {
            buf.put_u8(2);
            buf.put_f64(*f);
        }
        Value::Str(s) => {
            buf.put_u8(3);
            put_str(buf, s)?;
        }
        Value::Bool(b) => {
            buf.put_u8(4);
            buf.put_u8(*b as u8);
        }
        Value::Blob(b) => {
            buf.put_u8(5);
            buf.put_u32(encodable_len("blob", b.len())?);
            buf.put_slice(b);
        }
    }
    Ok(())
}

pub(crate) fn get_value(data: &mut &[u8]) -> Result<Value, StorageError> {
    let corrupt = |m: &str| StorageError::Corrupt(m.to_string());
    if !data.has_remaining() {
        return Err(corrupt("truncated value tag"));
    }
    Ok(match data.get_u8() {
        0 => Value::Null,
        1 => {
            if data.remaining() < 8 {
                return Err(corrupt("truncated int"));
            }
            Value::Int(data.get_i64())
        }
        2 => {
            if data.remaining() < 8 {
                return Err(corrupt("truncated float"));
            }
            Value::Float(data.get_f64())
        }
        3 => Value::Str(get_str(data)?),
        4 => {
            if !data.has_remaining() {
                return Err(corrupt("truncated bool"));
            }
            Value::Bool(data.get_u8() != 0)
        }
        5 => {
            if data.remaining() < 4 {
                return Err(corrupt("truncated blob length"));
            }
            let len = data.get_u32() as usize;
            if data.remaining() < len {
                return Err(corrupt("truncated blob payload"));
            }
            let b = data[..len].to_vec();
            data.advance(len);
            Value::Blob(b)
        }
        t => return Err(corrupt(&format!("unknown value tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let schema = Schema::of(&[
            ("id", DataType::Int),
            ("score", DataType::Float),
            ("title", DataType::Str),
            ("boring", DataType::Bool),
            ("pixels", DataType::Blob),
        ]);
        Table::from_rows(
            "films",
            schema,
            vec![
                vec![
                    1i64.into(),
                    0.999.into(),
                    "Guilty by Suspicion".into(),
                    true.into(),
                    Value::Blob(vec![1, 2, 3]),
                ],
                vec![
                    2i64.into(),
                    Value::Null,
                    "Clean and Sober".into(),
                    Value::Null,
                    Value::Blob(vec![]),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = table();
        let bytes = encode_table(&t).unwrap();
        let back = decode_table(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("kathdb_persist_test");
        let path = dir.join("films.ktbl");
        let t = table();
        save_table(&t, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(back, t);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn atomic_save_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join("kathdb_persist_atomic_test");
        let path = dir.join("films.ktbl");
        let t = table();
        save_table(&t, &path).unwrap();
        // Overwrite in place: still exactly one file, still decodable.
        save_table(&t, &path).unwrap();
        let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(entries.len(), 1, "temp file left behind");
        assert_eq!(load_table(&path).unwrap(), t);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn failed_atomic_write_leaves_target_and_no_temp() {
        use crate::{FaultKind, FaultPlan, IoOp};
        let dir =
            std::env::temp_dir().join(format!("kathdb_persist_fault_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("films.ktbl");
        let t = table();
        save_table(&t, &path).unwrap();
        let io = Io::real();
        for kind in [FaultKind::Permanent, FaultKind::Enospc] {
            for op in [IoOp::Write, IoOp::Rename] {
                io.install_faults(
                    FaultPlan::probabilistic(1, 1.0)
                        .with_kinds(&[kind])
                        .on_ops(&[op]),
                );
                assert!(matches!(
                    save_table_with(&io, &t, &path),
                    Err(StorageError::Io(_))
                ));
                io.clear_faults();
                // The old contents survive and no temp file is left behind.
                assert_eq!(load_table(&path).unwrap(), t);
                assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
            }
        }
        // A transient write fault is retried away.
        io.install_faults(FaultPlan::at(1, FaultKind::ShortWrite).on_ops(&[IoOp::Write]));
        save_table_with(&io, &t, &path).unwrap();
        assert_eq!(load_table(&path).unwrap(), t);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_corruption() {
        let t = table();
        let bytes = encode_table(&t).unwrap();
        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(decode_table(&bad).is_err());
        // Truncation at every prefix must error, never panic.
        for cut in 0..bytes.len() {
            assert!(decode_table(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut long = bytes.to_vec();
        long.push(0);
        assert!(decode_table(&long).is_err());
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let t = table();
        let bytes = encode_table(&t).unwrap().to_vec();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1 << (i % 8);
            assert!(
                decode_table(&bad).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn decodes_v1_tables_without_trailer() {
        let t = table();
        // A v1 encoding is the v2 encoding minus the trailer, with the
        // version byte rewritten.
        let v2 = encode_table(&t).unwrap();
        let mut v1 = v2[..v2.len() - 4].to_vec();
        v1[4] = 1;
        assert_eq!(decode_table(&v1).unwrap(), t);
    }

    #[test]
    fn oversized_payloads_refuse_to_encode() {
        assert!(encodable_len("string", u32::MAX as usize).is_ok());
        assert!(matches!(
            encodable_len("string", u32::MAX as usize + 1),
            Err(StorageError::TooLarge { ref what, len })
                if what == "string" && len == u32::MAX as u64 + 1
        ));
    }

    #[test]
    fn empty_table_round_trips() {
        let t = Table::new("empty", Schema::of(&[("x", DataType::Any)]));
        let back = decode_table(&encode_table(&t).unwrap()).unwrap();
        assert_eq!(back, t);
    }
}
