//! The system catalog.
//!
//! The catalog is consulted by the logical plan generator ("uses the system
//! catalog as additional context", §2.1) and owns the small set of database
//! utilities — row sampler, joinability tester — that the plan verifier's
//! tool user invokes (§4).

use crate::pool::BufferPool;
use crate::{HashIndex, StorageError, Table, TableStats, Value, VectorIndex};
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Per-table vector-index registrations: column → fresh index, or `None`
/// when invalidated and awaiting its lazy rebuild.
type VectorIndexSlots = BTreeMap<String, Option<Arc<VectorIndex>>>;

/// Named table registry with statistics and secondary indexes.
///
/// Indexes (created via [`Catalog::create_index`]) and cached statistics
/// (via [`Catalog::analyze`]) are *maintained*, not just stored — but
/// **lazily**: replacing a table through [`Catalog::register_or_replace`] —
/// the path every SQL `INSERT` and re-materialization takes — only marks
/// the table's derived state stale (O(1)); the rebuild happens on the first
/// index or statistics consumer. A loop of N single-row INSERTs therefore
/// costs one rebuild instead of N (the eager scheme made bulk loads
/// quadratic), while consumers still never observe a stale index or stale
/// row counts.
#[derive(Debug)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
    // The buffer pool every paged table of this catalog reads through;
    // shared (not deep-cloned) across catalog clones so staged recovery
    // and the live catalog see one set of counters and one budget.
    pool: Arc<BufferPool>,
    // table -> column -> index. Interior mutability: lazily rebuilt from
    // read-path consumers (`index_on`, `stats`, …) that take `&self`.
    indexes: RwLock<BTreeMap<String, BTreeMap<String, Arc<HashIndex>>>>,
    // table -> column -> vector similarity index. Derived state like the
    // hash indexes: built on first use (`vector_index_for`), marked stale
    // on replace — and *invalidated* (value set to None), not eagerly
    // rebuilt, by the stale refresh: re-embedding a column is O(n·dim), so
    // only the next similarity query pays for it, never an unrelated
    // stats/index consumer. Purely in-memory, so crash recovery needs no
    // on-disk vector format (the first query after a restart rebuilds
    // from the recovered rows).
    vindexes: RwLock<BTreeMap<String, VectorIndexSlots>>,
    // Cached statistics for analyzed tables.
    stats_cache: RwLock<BTreeMap<String, TableStats>>,
    // Tables whose derived state (indexes + cached stats) is out of date.
    stale: RwLock<BTreeSet<String>>,
    // Diagnostic: how many lazy rebuilds have run (regression tests assert
    // bulk-insert loops trigger one, not N).
    rebuilds: AtomicUsize,
}

impl Clone for Catalog {
    fn clone(&self) -> Self {
        // Each lock is taken and released in turn (never nested) so a clone
        // can never deadlock against a refresh holding the locks in its own
        // order.
        let indexes = self.indexes.read().clone();
        let vindexes = self.vindexes.read().clone();
        let stats_cache = self.stats_cache.read().clone();
        let stale = self.stale.read().clone();
        Self {
            tables: self.tables.clone(),
            pool: Arc::clone(&self.pool),
            indexes: RwLock::new(indexes),
            vindexes: RwLock::new(vindexes),
            stats_cache: RwLock::new(stats_cache),
            stale: RwLock::new(stale),
            rebuilds: AtomicUsize::new(self.rebuilds.load(Ordering::Relaxed)), // lint: relaxed-ok — telemetry counter; no memory is published under it
        }
    }
}

/// Result of the joinability tester utility (§4): how well two columns join.
#[derive(Debug, Clone, PartialEq)]
pub struct Joinability {
    /// Fraction of distinct left keys that appear on the right, in `[0,1]`.
    pub key_overlap: f64,
    /// Whether the right side has at most one row per key (i.e. joining will
    /// not fan out — the assumption the paper's semantic monitor checks when
    /// a poster matches several movies, §5).
    pub right_unique: bool,
    /// Estimated join output rows.
    pub estimated_rows: f64,
}

impl Default for Catalog {
    fn default() -> Self {
        Self {
            tables: BTreeMap::new(),
            pool: Arc::new(BufferPool::from_env()),
            indexes: RwLock::default(),
            vindexes: RwLock::default(),
            stats_cache: RwLock::default(),
            stale: RwLock::default(),
            rebuilds: AtomicUsize::new(0),
        }
    }
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffer pool shared by this catalog's paged tables.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Re-budgets the buffer pool (in pages), evicting down immediately.
    pub fn set_pool_budget(&self, pages: usize) {
        self.pool.set_budget(pages);
    }

    /// Converts `name` to the paged representation in place. Contents are
    /// unchanged, so derived state (indexes, stats) is *not* marked stale.
    /// Returns whether a conversion happened (false if already paged).
    pub fn page_table(&mut self, name: &str, page_rows: usize) -> Result<bool, StorageError> {
        let table = self.get(name)?;
        if table.is_paged() {
            return Ok(false);
        }
        let paged = table.to_paged(&self.pool, page_rows)?;
        self.tables.insert(name.to_string(), Arc::new(paged));
        Ok(true)
    }

    /// Swaps in a logically-identical replacement for an existing table
    /// (e.g. the paged version produced by a checkpoint). Unlike
    /// [`Catalog::register_or_replace`] this does not mark derived state
    /// stale — the contents are the same rows, so indexes stay valid.
    pub fn swap_in_identical(&mut self, table: Arc<Table>) {
        self.tables.insert(table.name().to_string(), table);
    }

    /// Registers a table; fails if the name is taken.
    pub fn register(&mut self, table: Table) -> Result<Arc<Table>, StorageError> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(StorageError::TableExists(name));
        }
        let arc = Arc::new(table);
        self.tables.insert(name, Arc::clone(&arc));
        Ok(arc)
    }

    /// Registers or replaces a table (used when a repaired function version
    /// re-materializes its output, and by SQL `INSERT`). Existing secondary
    /// indexes and cached statistics are **marked stale** and rebuilt
    /// lazily on their next consumer, so bulk-insert loops pay one rebuild
    /// instead of one per replacement.
    pub fn register_or_replace(&mut self, table: Table) -> Arc<Table> {
        let name = table.name().to_string();
        let arc = Arc::new(table);
        self.tables.insert(name.clone(), Arc::clone(&arc));
        let has_derived = self.indexes.read().contains_key(&name)
            || self.vindexes.read().contains_key(&name)
            || self.stats_cache.read().contains_key(&name);
        if has_derived {
            self.stale.write().insert(name);
        }
        arc
    }

    /// Rebuilds indexes and cached stats of `name` from its current
    /// contents, if they are stale. Indexes whose column no longer exists
    /// are dropped. Every derived-state consumer calls this first, so a
    /// stale index or stale row count is never observable: the stale
    /// marker stays write-locked for the whole rebuild, making a
    /// concurrent consumer wait for fresh state instead of racing past a
    /// cleared flag into the old one.
    fn refresh_if_stale(&self, name: &str) {
        let mut stale = self.stale.write();
        if !stale.remove(name) {
            return;
        }
        let Some(table) = self.tables.get(name).cloned() else {
            return;
        };
        self.rebuilds.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok — telemetry counter; no memory is published under it
        self.rebuild_indexes(name, &table);
        self.invalidate_vector_indexes(name);
        let mut stats = self.stats_cache.write();
        if stats.contains_key(name) {
            stats.insert(name.to_string(), TableStats::collect(&table));
        }
    }

    /// Rebuilds every index of `name` against `table`, dropping indexes
    /// whose column no longer exists.
    fn rebuild_indexes(&self, name: &str, table: &Table) {
        if let Some(cols) = self.indexes.write().get_mut(name) {
            let rebuilt: BTreeMap<String, Arc<HashIndex>> = cols
                .keys()
                .filter_map(|c| {
                    HashIndex::build(table, c)
                        .ok()
                        .map(|ix| (c.clone(), Arc::new(ix)))
                })
                .collect();
            *cols = rebuilt;
        }
    }

    /// Invalidates every vector index of `name`, keeping the registrations
    /// so the next similarity query (the only consumer that needs them)
    /// rebuilds on demand. Rebuilding here eagerly would charge the full
    /// O(rows·dim) re-embedding to whatever unrelated stats or hash-index
    /// consumer happened to settle the stale marker.
    fn invalidate_vector_indexes(&self, name: &str) {
        if let Some(cols) = self.vindexes.write().get_mut(name) {
            for slot in cols.values_mut() {
                *slot = None;
            }
        }
    }

    /// Number of tables whose derived state awaits a lazy rebuild.
    pub fn pending_refreshes(&self) -> usize {
        self.stale.read().len()
    }

    /// How many lazy derived-state rebuilds have run so far (diagnostic;
    /// regression tests assert bulk loads trigger one, not one per INSERT).
    pub fn derived_rebuilds(&self) -> usize {
        self.rebuilds.load(Ordering::Relaxed) // lint: relaxed-ok — telemetry counter; no memory is published under it
    }

    /// Fetches a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<Table>, StorageError> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Drops a table along with its indexes and cached statistics.
    pub fn drop_table(&mut self, name: &str) -> Result<(), StorageError> {
        self.indexes.write().remove(name);
        self.vindexes.write().remove(name);
        self.stats_cache.write().remove(name);
        self.stale.write().remove(name);
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Builds (or rebuilds) a hash index over `table.column`, used by the
    /// SQL layer to serve equality predicates without a full scan.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<(), StorageError> {
        let t = self.get(table)?;
        let ix = HashIndex::build(&t, column)?;
        self.indexes
            .write()
            .entry(table.to_string())
            .or_default()
            .insert(column.to_string(), Arc::new(ix));
        Ok(())
    }

    /// The hash index over `table.column`, if one was created (stale
    /// indexes are rebuilt first).
    pub fn index_on(&self, table: &str, column: &str) -> Option<Arc<HashIndex>> {
        self.refresh_if_stale(table);
        self.indexes.read().get(table)?.get(column).cloned()
    }

    /// Columns of `table` that carry a secondary index (a pending refresh
    /// is settled first so indexes over dropped columns are not listed).
    pub fn indexed_columns(&self, table: &str) -> Vec<String> {
        self.refresh_if_stale(table);
        self.indexes
            .read()
            .get(table)
            .map(|cols| cols.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Builds (or refreshes) the vector similarity index over
    /// `table.column`, deriving it on first use: the planner calls this
    /// when it lowers an `ORDER BY SIMILARITY(...) DESC LIMIT k` pattern,
    /// so no explicit DDL is needed. The index is catalog derived state —
    /// marked stale by inserts/replacements, rebuilt lazily, dropped with
    /// the table, and rebuilt from recovered rows after a crash.
    pub fn vector_index_for(
        &self,
        table: &str,
        column: &str,
    ) -> Result<Arc<VectorIndex>, StorageError> {
        self.refresh_if_stale(table);
        if let Some(Some(ix)) = self
            .vindexes
            .read()
            .get(table)
            .and_then(|cols| cols.get(column))
        {
            return Ok(Arc::clone(ix));
        }
        let t = self.get(table)?;
        let built = Arc::new(VectorIndex::build(&t, column)?);
        let mut w = self.vindexes.write();
        let slot = w
            .entry(table.to_string())
            .or_default()
            .entry(column.to_string())
            .or_insert(None);
        // A racing builder may have won; keep the first fresh one.
        if slot.is_none() {
            *slot = Some(built);
        }
        Ok(Arc::clone(slot.as_ref().expect("slot filled above")))
    }

    /// The vector index over `table.column` if one has been derived and
    /// is fresh (stale state settled first); never builds — an
    /// invalidated registration reports `None` until the next similarity
    /// query rebuilds it.
    pub fn vector_index_on(&self, table: &str, column: &str) -> Option<Arc<VectorIndex>> {
        self.refresh_if_stale(table);
        self.vindexes.read().get(table)?.get(column)?.clone()
    }

    /// Drops the derived vector index over `table.column`; returns whether
    /// one existed.
    pub fn drop_vector_index(&mut self, table: &str, column: &str) -> bool {
        let mut w = self.vindexes.write();
        let Some(cols) = w.get_mut(table) else {
            return false;
        };
        let existed = cols.remove(column).is_some();
        if cols.is_empty() {
            w.remove(table);
        }
        existed
    }

    /// Columns of `table` with a vector-index registration (fresh or
    /// awaiting lazy rebuild).
    pub fn vector_indexed_columns(&self, table: &str) -> Vec<String> {
        self.refresh_if_stale(table);
        self.vindexes
            .read()
            .get(table)
            .map(|cols| cols.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Collects and caches statistics for `table`. Subsequent catalog
    /// mutations of the table keep the cache fresh (rebuilt lazily on the
    /// next statistics consumer).
    pub fn analyze(&mut self, table: &str) -> Result<TableStats, StorageError> {
        let t = self.get(table)?;
        // Settle only the index half of any pending refresh — the stats
        // half would collect the very statistics this call is about to
        // collect anyway, and a full refresh would scan the table twice.
        let mut stale = self.stale.write();
        if stale.remove(table) {
            self.rebuilds.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok — telemetry counter; no memory is published under it
            self.rebuild_indexes(table, &t);
            self.invalidate_vector_indexes(table);
        }
        let stats = TableStats::collect(t.as_ref());
        self.stats_cache
            .write()
            .insert(table.to_string(), stats.clone());
        drop(stale);
        Ok(stats)
    }

    /// Cached statistics for `table`, if it has been analyzed (refreshed
    /// first when the table changed since).
    pub fn cached_stats(&self, table: &str) -> Option<TableStats> {
        self.refresh_if_stale(table);
        self.stats_cache.read().get(table).cloned()
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Catalog metadata the logical plan generator feeds to the model:
    /// every table with its schema and row count.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (name, t) in &self.tables {
            out.push_str(&format!("{name} {} [{} rows]\n", t.schema(), t.len()));
        }
        out
    }

    /// The rows-sampler utility (§4): first `n` rows of a table.
    pub fn sample_rows(&self, name: &str, n: usize) -> Result<Table, StorageError> {
        Ok(self.get(name)?.sample(n))
    }

    /// Statistics for a table: the maintained cache when the table has been
    /// analyzed, otherwise collected on the spot.
    pub fn stats(&self, name: &str) -> Result<TableStats, StorageError> {
        if let Some(cached) = self.cached_stats(name) {
            return Ok(cached);
        }
        Ok(TableStats::collect(self.get(name)?.as_ref()))
    }

    /// The joinability tester utility (§4): measures how `left.left_col`
    /// joins against `right.right_col`.
    pub fn joinability(
        &self,
        left: &str,
        left_col: &str,
        right: &str,
        right_col: &str,
    ) -> Result<Joinability, StorageError> {
        let lt = self.get(left)?;
        let rt = self.get(right)?;
        let li = lt.schema().resolve(left_col)?;
        let ri = rt.schema().resolve(right_col)?;

        let mut right_counts: std::collections::HashMap<Value, usize> =
            std::collections::HashMap::new();
        for row in rt.rows() {
            if !row[ri].is_null() {
                *right_counts.entry(row[ri].clone()).or_insert(0) += 1;
            }
        }
        let mut left_keys: std::collections::HashSet<Value> = std::collections::HashSet::new();
        for row in lt.rows() {
            if !row[li].is_null() {
                left_keys.insert(row[li].clone());
            }
        }
        let overlapping = left_keys
            .iter()
            .filter(|k| right_counts.contains_key(k))
            .count();
        let key_overlap = if left_keys.is_empty() {
            0.0
        } else {
            overlapping as f64 / left_keys.len() as f64
        };
        let right_unique = right_counts.values().all(|&c| c <= 1);
        let estimated_rows: f64 = lt
            .rows()
            .iter()
            .filter(|r| !r[li].is_null())
            .map(|r| right_counts.get(&r[li]).copied().unwrap_or(0) as f64)
            .sum();
        Ok(Joinability {
            key_overlap,
            right_unique,
            estimated_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let films = Table::from_rows(
            "films",
            Schema::of(&[("id", DataType::Int), ("title", DataType::Str)]),
            vec![
                vec![1i64.into(), "A".into()],
                vec![2i64.into(), "B".into()],
                vec![3i64.into(), "C".into()],
            ],
        )
        .unwrap();
        let posters = Table::from_rows(
            "posters",
            Schema::of(&[("film_id", DataType::Int), ("uri", DataType::Str)]),
            vec![
                vec![1i64.into(), "p1".into()],
                vec![1i64.into(), "p1b".into()],
                vec![2i64.into(), "p2".into()],
            ],
        )
        .unwrap();
        c.register(films).unwrap();
        c.register(posters).unwrap();
        c
    }

    #[test]
    fn register_get_drop() {
        let mut c = catalog();
        assert!(c.contains("films"));
        assert_eq!(c.table_names(), vec!["films", "posters"]);
        assert!(c.get("nope").is_err());
        c.drop_table("films").unwrap();
        assert!(!c.contains("films"));
        assert!(c.drop_table("films").is_err());
    }

    #[test]
    fn duplicate_registration_fails_but_replace_works() {
        let mut c = catalog();
        let dup = Table::new("films", Schema::of(&[("x", DataType::Int)]));
        assert!(matches!(
            c.register(dup.clone()),
            Err(StorageError::TableExists(_))
        ));
        c.register_or_replace(dup);
        assert_eq!(c.get("films").unwrap().schema().names(), vec!["x"]);
    }

    #[test]
    fn joinability_detects_fanout() {
        let c = catalog();
        let j = c.joinability("films", "id", "posters", "film_id").unwrap();
        assert!((j.key_overlap - 2.0 / 3.0).abs() < 1e-12);
        assert!(!j.right_unique); // film 1 has two posters
        assert_eq!(j.estimated_rows, 3.0);
    }

    #[test]
    fn describe_lists_all_tables() {
        let d = catalog().describe();
        assert!(d.contains("films"));
        assert!(d.contains("posters"));
        assert!(d.contains("[3 rows]"));
    }

    #[test]
    fn sample_rows_utility() {
        let c = catalog();
        assert_eq!(c.sample_rows("films", 2).unwrap().len(), 2);
    }

    #[test]
    fn create_index_and_lookup() {
        let mut c = catalog();
        c.create_index("posters", "film_id").unwrap();
        let ix = c.index_on("posters", "film_id").unwrap();
        assert_eq!(ix.lookup(&Value::Int(1)), &[0, 1]);
        assert!(c.index_on("posters", "uri").is_none());
        assert!(c.index_on("films", "id").is_none());
        assert_eq!(c.indexed_columns("posters"), vec!["film_id"]);
        assert!(c.create_index("posters", "nope").is_err());
        assert!(c.create_index("missing", "x").is_err());
    }

    #[test]
    fn replace_rebuilds_indexes() {
        let mut c = catalog();
        c.create_index("films", "id").unwrap();
        let mut grown = (*c.get("films").unwrap()).clone();
        grown.push(vec![9i64.into(), "D".into()]).unwrap();
        c.register_or_replace(grown);
        let ix = c.index_on("films", "id").unwrap();
        assert_eq!(ix.lookup(&Value::Int(9)), &[3]);
    }

    #[test]
    fn bulk_replace_defers_rebuilds_until_first_consumer() {
        let mut c = catalog();
        c.create_index("films", "id").unwrap();
        c.analyze("films").unwrap();
        assert_eq!(c.derived_rebuilds(), 0);
        // A bulk-insert-style loop: N replacements, zero rebuilds.
        for i in 0..100i64 {
            let mut grown = (*c.get("films").unwrap()).clone();
            grown
                .push(vec![(100 + i).into(), format!("t{i}").into()])
                .unwrap();
            c.register_or_replace(grown);
        }
        assert_eq!(c.derived_rebuilds(), 0, "replacements must not rebuild");
        assert_eq!(c.pending_refreshes(), 1);
        // First consumer settles the debt exactly once and sees fresh state.
        let ix = c.index_on("films", "id").unwrap();
        assert_eq!(ix.lookup(&Value::Int(199)), &[102]);
        assert_eq!(c.derived_rebuilds(), 1);
        assert_eq!(c.pending_refreshes(), 0);
        // Stats consumers see the refreshed cache too, without extra work.
        assert_eq!(c.cached_stats("films").unwrap().rows, 103);
        assert_eq!(c.derived_rebuilds(), 1);
    }

    #[test]
    fn replace_without_derived_state_stays_clean() {
        let mut c = catalog();
        let grown = (*c.get("films").unwrap()).clone();
        c.register_or_replace(grown);
        assert_eq!(c.pending_refreshes(), 0);
    }

    #[test]
    fn analyzed_stats_refresh_on_replace() {
        let mut c = catalog();
        let before = c.analyze("films").unwrap();
        assert_eq!(before.rows, 3);
        let mut grown = (*c.get("films").unwrap()).clone();
        grown.push(vec![9i64.into(), "D".into()]).unwrap();
        c.register_or_replace(grown);
        // The cache was refreshed, not served stale.
        assert_eq!(c.cached_stats("films").unwrap().rows, 4);
        assert_eq!(c.stats("films").unwrap().rows, 4);
        assert_eq!(c.stats("films").unwrap().column("id").unwrap().ndv, 4);
    }

    fn docs_catalog() -> Catalog {
        use crate::encode_embedding;
        use kath_vector::seeded_unit_vector;
        let mut c = Catalog::new();
        let mut t = Table::new(
            "docs",
            Schema::of(&[("id", DataType::Int), ("emb", DataType::Blob)]),
        );
        for i in 0..20u64 {
            t.push(vec![
                Value::Int(i as i64),
                Value::Blob(encode_embedding(&seeded_unit_vector(i % 3 + 50))),
            ])
            .unwrap();
        }
        c.register(t).unwrap();
        c
    }

    #[test]
    fn vector_index_derives_on_first_use_and_rebuilds_after_insert() {
        use crate::{encode_embedding, VectorStrategy};
        use kath_vector::seeded_unit_vector;
        let mut c = docs_catalog();
        assert!(c.vector_index_on("docs", "emb").is_none());
        let ix = c.vector_index_for("docs", "emb").unwrap();
        assert_eq!(ix.rows(), 20);
        assert_eq!(c.vector_indexed_columns("docs"), vec!["emb"]);
        // Replacing the table marks the derived index stale; the next
        // consumer sees the new row without an explicit rebuild call.
        let mut grown = (*c.get("docs").unwrap()).clone();
        grown
            .push(vec![
                Value::Int(99),
                Value::Blob(encode_embedding(&seeded_unit_vector(51))),
            ])
            .unwrap();
        c.register_or_replace(grown);
        assert_eq!(c.pending_refreshes(), 1);
        // Settling the stale marker only *invalidates* the vector index —
        // the O(rows·dim) rebuild is deferred to the next similarity
        // consumer, not charged to whoever touches derived state first.
        assert!(c.vector_index_on("docs", "emb").is_none());
        assert_eq!(c.vector_indexed_columns("docs"), vec!["emb"]);
        let ix = c.vector_index_for("docs", "emb").unwrap();
        assert_eq!(ix.rows(), 21);
        assert!(c.vector_index_on("docs", "emb").is_some());
        let top = ix.search(&seeded_unit_vector(51), 21, VectorStrategy::Flat);
        assert!(top.contains(&20), "new row must be indexed: {top:?}");
    }

    #[test]
    fn vector_index_errors_and_drops() {
        let mut c = docs_catalog();
        assert!(c.vector_index_for("docs", "id").is_err());
        assert!(c.vector_index_for("docs", "nope").is_err());
        assert!(c.vector_index_for("missing", "emb").is_err());
        c.vector_index_for("docs", "emb").unwrap();
        assert!(c.drop_vector_index("docs", "emb"));
        assert!(!c.drop_vector_index("docs", "emb"));
        assert!(c.vector_index_on("docs", "emb").is_none());
        // Dropping the table clears any derived vector state.
        c.vector_index_for("docs", "emb").unwrap();
        c.drop_table("docs").unwrap();
        assert!(c.vector_index_on("docs", "emb").is_none());
        assert!(c.vector_indexed_columns("docs").is_empty());
    }

    #[test]
    fn drop_clears_indexes_and_stats() {
        let mut c = catalog();
        c.create_index("films", "id").unwrap();
        c.analyze("films").unwrap();
        c.drop_table("films").unwrap();
        assert!(c.index_on("films", "id").is_none());
        assert!(c.cached_stats("films").is_none());
    }
}
