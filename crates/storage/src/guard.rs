//! Per-query guardrails: deadline, cooperative cancellation, and row/byte
//! budgets, enforced uniformly across all four query drives.
//!
//! A [`QueryGuard`] is built once per statement (from the session-level
//! [`GuardSpec`]) and threaded through the drive that runs it:
//!
//! - **Volcano**: [`crate::collect`]'s guarded variant checks before every
//!   `next()` and charges each produced row; long scans additionally check
//!   inside [`crate::TableScan`]/[`crate::IndexScan`] every
//!   [`GUARD_CHECK_INTERVAL`] rows, so a blocking `Sort`/`Aggregate` above
//!   the scan still aborts mid-scan.
//! - **Batch**: the guarded batched collector checks before every
//!   `next_batch()` and charges each produced batch.
//! - **Morsel-parallel**: workers check between morsels (claim, check,
//!   work), and the per-worker scans carry the guard too.
//! - **Compiled**: the fused loop checks once per scan batch and charges
//!   pipeline output rows.
//!
//! Budgets meter **produced** (root-level) rows and bytes — the work a
//! client would receive — not intermediate operator traffic. A tripped
//! guard surfaces as a typed [`StorageError::Cancelled`] or
//! [`StorageError::Budget`]; partial results are dropped on the unwind
//! path and no catalog state is touched, so the next query on the same
//! catalog runs normally.
//!
//! The unlimited guard is a `None` — every check is one branch on an
//! `Option`, which keeps the overhead of guardrails on un-limited queries
//! below the noise floor (see `fault_bench`).

use crate::batch::{ColumnData, RowBatch};
use crate::{Row, StorageError, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many rows a scan produces between guard checks. Checks are cheap
/// (an atomic load; an `Instant::now()` only when a deadline is set), but
/// per-row checks in the Volcano drive would still be measurable.
pub const GUARD_CHECK_INTERVAL: usize = 128;

/// A shared cancellation flag: clone it, hand it to another thread, and
/// [`CancelToken::cancel`] aborts the running query at its next guard
/// check. Flags are one-shot per query — the facade clears the flag after
/// a query returns `Cancelled`, so the next query is unaffected.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Fires the token: the owning query aborts at its next check.
    /// Release/Acquire so everything the cancelling thread did before
    /// firing is visible to the query that observes the abort.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Re-arms the token for the next query.
    pub fn clear(&self) {
        self.flag.store(false, Ordering::Release);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[derive(Debug)]
struct GuardInner {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    row_budget: Option<u64>,
    byte_budget: Option<u64>,
    rows: AtomicU64,
    bytes: AtomicU64,
}

/// The per-query guard. Cheap to clone (an `Arc`); the unlimited guard is
/// a `None` and every operation on it is a single branch.
#[derive(Debug, Clone, Default)]
pub struct QueryGuard {
    inner: Option<Arc<GuardInner>>,
}

impl QueryGuard {
    /// A guard that never trips — the default for un-limited sessions.
    pub fn unlimited() -> QueryGuard {
        QueryGuard::default()
    }

    /// Whether this guard can never trip.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    fn make_mut(&mut self) -> &mut GuardInner {
        if self.inner.is_none() {
            self.inner = Some(Arc::new(GuardInner {
                deadline: None,
                cancel: None,
                row_budget: None,
                byte_budget: None,
                rows: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
            }));
        }
        // Builders run before the guard is shared, so this never clones.
        Arc::get_mut(self.inner.as_mut().expect("just set")).expect("unshared during build")
    }

    /// Trips with `Cancelled` once `Instant::now()` passes `deadline`.
    pub fn with_deadline(mut self, deadline: Instant) -> QueryGuard {
        self.make_mut().deadline = Some(deadline);
        self
    }

    /// Deadline `timeout` from now. A zero timeout trips on the very first
    /// check, before any row is produced.
    pub fn with_timeout(self, timeout: Duration) -> QueryGuard {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Trips with `Cancelled` once `cancel` fires.
    pub fn with_cancel(mut self, cancel: CancelToken) -> QueryGuard {
        self.make_mut().cancel = Some(cancel);
        self
    }

    /// Trips with `Budget` after producing more than `rows` rows.
    pub fn with_row_budget(mut self, rows: u64) -> QueryGuard {
        self.make_mut().row_budget = Some(rows);
        self
    }

    /// Trips with `Budget` after producing more than `bytes` bytes.
    pub fn with_byte_budget(mut self, bytes: u64) -> QueryGuard {
        self.make_mut().byte_budget = Some(bytes);
        self
    }

    /// Checks cancellation and deadline (not budgets). Call this before
    /// producing work; interval-check it inside tight loops via
    /// [`QueryGuard::check_periodic`].
    pub fn check(&self) -> Result<(), StorageError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if let Some(cancel) = &inner.cancel {
            if cancel.is_cancelled() {
                return Err(StorageError::Cancelled("cancel token fired".to_string()));
            }
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(StorageError::Cancelled("deadline exceeded".to_string()));
            }
        }
        Ok(())
    }

    /// [`QueryGuard::check`] every [`GUARD_CHECK_INTERVAL`]-th call site
    /// iteration (`i` is the loop counter). Checks at `i == 0` so a 0ms
    /// deadline trips before the first row.
    #[inline]
    pub fn check_periodic(&self, i: usize) -> Result<(), StorageError> {
        if self.inner.is_some() && i.is_multiple_of(GUARD_CHECK_INTERVAL) {
            self.check()
        } else {
            Ok(())
        }
    }

    /// Whether byte accounting is needed (a byte budget is set). Callers
    /// skip footprint computation otherwise.
    pub fn wants_bytes(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.byte_budget.is_some())
    }

    /// Charges `rows` produced rows and `bytes` produced bytes against the
    /// budgets.
    pub fn charge(&self, rows: u64, bytes: u64) -> Result<(), StorageError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if let Some(budget) = inner.row_budget {
            let total = inner.rows.fetch_add(rows, Ordering::Relaxed) + rows; // lint: relaxed-ok — the RMW keeps the budget count exact; no other memory rides on it
            if total > budget {
                return Err(StorageError::Budget(format!(
                    "row budget of {budget} exceeded ({total} rows produced)"
                )));
            }
        }
        if let Some(budget) = inner.byte_budget {
            let total = inner.bytes.fetch_add(bytes, Ordering::Relaxed) + bytes; // lint: relaxed-ok — the RMW keeps the budget count exact; no other memory rides on it
            if total > budget {
                return Err(StorageError::Budget(format!(
                    "byte budget of {budget} exceeded ({total} bytes produced)"
                )));
            }
        }
        Ok(())
    }

    /// Charges one produced row.
    pub fn charge_row(&self, row: &Row) -> Result<(), StorageError> {
        if self.inner.is_none() {
            return Ok(());
        }
        let bytes = if self.wants_bytes() {
            row_footprint(row)
        } else {
            0
        };
        self.charge(1, bytes)
    }

    /// Charges one produced batch.
    pub fn charge_batch(&self, batch: &RowBatch) -> Result<(), StorageError> {
        if self.inner.is_none() {
            return Ok(());
        }
        let bytes = if self.wants_bytes() {
            batch_footprint(batch)
        } else {
            0
        };
        self.charge(batch.num_rows() as u64, bytes)
    }
}

/// Approximate in-memory footprint of one value (fixed 8 bytes for
/// scalars, 8 + payload for strings/blobs).
pub fn value_footprint(v: &Value) -> u64 {
    match v {
        Value::Null | Value::Int(_) | Value::Float(_) | Value::Bool(_) => 8,
        Value::Str(s) => 8 + s.len() as u64,
        Value::Blob(b) => 8 + b.len() as u64,
    }
}

/// Approximate footprint of one row.
pub fn row_footprint(row: &Row) -> u64 {
    row.iter().map(value_footprint).sum()
}

/// Approximate footprint of one batch (column-wise, no per-row walk for
/// fixed-width columns).
pub fn batch_footprint(batch: &RowBatch) -> u64 {
    batch
        .columns()
        .iter()
        .map(|c| match c.data() {
            ColumnData::Int(v) => 8 * v.len() as u64,
            ColumnData::Float(v) => 8 * v.len() as u64,
            ColumnData::Bool(v) => 8 * v.len() as u64,
            ColumnData::Str(v) => v.iter().map(|s| 8 + s.len() as u64).sum(),
            ColumnData::Mixed(v) => v.iter().map(value_footprint).sum(),
        })
        .sum()
}

/// Session-level limits (the `KathDB` facade and `ExecContext` hold one):
/// a timeout, optional budgets, and the session's cancel token. Each
/// statement mints a fresh [`QueryGuard`] via [`GuardSpec::guard`], fixing
/// the deadline at statement start.
#[derive(Debug, Clone, Default)]
pub struct GuardSpec {
    /// Per-query wall-clock timeout.
    pub timeout: Option<Duration>,
    /// Per-query produced-row budget.
    pub row_budget: Option<u64>,
    /// Per-query produced-byte budget.
    pub byte_budget: Option<u64>,
    /// The session's cancel token (shared across queries; one-shot — the
    /// facade clears it after a cancelled query returns).
    pub cancel: CancelToken,
}

impl GuardSpec {
    /// Whether every query under this spec runs unguarded.
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none() && self.row_budget.is_none() && self.byte_budget.is_none()
    }

    /// Mints the guard for one statement. Unlimited specs still carry the
    /// cancel token, so `cancel()` works even with no timeout set.
    pub fn guard(&self) -> QueryGuard {
        let mut g = QueryGuard::unlimited().with_cancel(self.cancel.clone());
        if let Some(t) = self.timeout {
            g = g.with_timeout(t);
        }
        if let Some(r) = self.row_budget {
            g = g.with_row_budget(r);
        }
        if let Some(b) = self.byte_budget {
            g = g.with_byte_budget(b);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = QueryGuard::unlimited();
        assert!(g.is_unlimited());
        g.check().unwrap();
        g.charge(1 << 40, 1 << 40).unwrap();
        g.check_periodic(0).unwrap();
    }

    #[test]
    fn zero_timeout_trips_on_first_check() {
        let g = QueryGuard::unlimited().with_timeout(Duration::ZERO);
        assert!(matches!(g.check(), Err(StorageError::Cancelled(_))));
        // And via the periodic path at i == 0 too.
        assert!(matches!(
            g.check_periodic(0),
            Err(StorageError::Cancelled(_))
        ));
    }

    #[test]
    fn cancel_token_trips_and_clears() {
        let token = CancelToken::new();
        let g = QueryGuard::unlimited().with_cancel(token.clone());
        g.check().unwrap();
        token.cancel();
        assert!(matches!(g.check(), Err(StorageError::Cancelled(_))));
        token.clear();
        g.check().unwrap();
    }

    #[test]
    fn row_budget_trips_past_the_line() {
        let g = QueryGuard::unlimited().with_row_budget(3);
        g.charge(3, 0).unwrap();
        assert!(matches!(g.charge(1, 0), Err(StorageError::Budget(_))));
    }

    #[test]
    fn byte_budget_counts_payload_bytes() {
        let g = QueryGuard::unlimited().with_byte_budget(20);
        assert!(g.wants_bytes());
        let row: Row = vec![Value::Int(1), Value::Str("abcd".into())];
        assert_eq!(row_footprint(&row), 8 + 8 + 4);
        g.charge_row(&row).unwrap();
        assert!(matches!(g.charge_row(&row), Err(StorageError::Budget(_))));
    }

    #[test]
    fn batch_footprint_matches_row_walk() {
        let rows = vec![
            vec![Value::Int(1), Value::Str("ab".into()), Value::Bool(true)],
            vec![Value::Int(2), Value::Str("c".into()), Value::Null],
        ];
        let by_rows: u64 = rows.iter().map(row_footprint).sum();
        let batch = RowBatch::from_rows(3, rows);
        assert_eq!(batch_footprint(&batch), by_rows);
    }

    #[test]
    fn spec_mints_fresh_deadlines() {
        let spec = GuardSpec {
            timeout: Some(Duration::from_secs(3600)),
            ..GuardSpec::default()
        };
        assert!(!spec.is_unlimited());
        spec.guard().check().unwrap();
        let spec = GuardSpec::default();
        assert!(spec.is_unlimited());
        spec.guard().check().unwrap();
        // Cancel still works on an unlimited spec.
        spec.cancel.cancel();
        assert!(matches!(
            spec.guard().check(),
            Err(StorageError::Cancelled(_))
        ));
    }

    #[test]
    fn periodic_check_skips_mid_interval() {
        let g = QueryGuard::unlimited().with_timeout(Duration::ZERO);
        g.check_periodic(1).unwrap(); // mid-interval: not checked
        assert!(g.check_periodic(GUARD_CHECK_INTERVAL).is_err());
    }
}
