//! Closure-compiled expressions and fused filter→project pipelines — the
//! engine's third execution strategy, after Volcano and batched.
//!
//! Following Neumann's observation that interpretation overhead dominates
//! once data is columnar and in-cache, [`CompiledExpr::compile`] lowers a
//! schema-resolved [`Expr`] **once per query** into a tree of specialized
//! `Fn(&RowBatch) -> ColumnVector` kernels: column ordinals are resolved at
//! compile time (no per-batch name lookup), operator/type dispatch happens
//! at compile time (no per-batch `match` over the expression tree), and the
//! hot `int-column <cmp> int-literal` shape gets a dedicated tight loop.
//! [`CompiledPipeline`] then fuses the filter and projection of a pipeline
//! into a single per-batch call with no per-operator `next_batch` dispatch.
//!
//! Compilation is **total or not at all** per expression: any node the
//! compiler does not support (model-backed functions like `similarity` /
//! `embed`, unknown columns) makes [`CompiledExpr::compile`] return `None`
//! and the caller falls back to the interpreted operators. Kernels reuse
//! the exact batch-evaluator building blocks ([`Expr::eval_batch`]'s
//! kernels are shared, not reimplemented), so compiled results are
//! byte-identical to interpreted ones — including SQL three-valued logic,
//! `AND`/`OR` short-circuit error masking, and division-by-zero errors.

use crate::batch::{ColumnData, ColumnVector, NullBitmap, RowBatch};
use crate::expr::{
    call_kernel, combine_logical, eval_bin_batch, is_null_kernel, neg_kernel, not_kernel,
};
use crate::{BinOp, Expr, Schema, StorageError, Value};
use std::fmt;
use std::sync::Arc;

/// Environment variable overriding the default compile mode
/// (`off`/`0`/`false`, `on`/`1`/`true`, anything else = `auto`).
pub const COMPILE_ENV: &str = "KATHDB_COMPILE";

/// Rows below which compiling a query costs more than it saves: the
/// one-time closure build (and its cost-model setup term) must amortize
/// over enough per-value savings to pay for itself. Shared by the optimizer
/// ([`compile_pays_off`] is the single decision rule) so the cost model and
/// the runtime's auto mode can never disagree.
pub const COMPILE_BREAK_EVEN_ROWS: usize = 5000;

/// Whether compiling a pipeline over `rows` input rows is predicted to win
/// over interpreted batched execution. This is the *one* decision rule both
/// the optimizer's `(mode, dop, compiled)` strategy choice and the SQL
/// driver's `auto` mode consult.
pub fn compile_pays_off(rows: usize) -> bool {
    rows > COMPILE_BREAK_EVEN_ROWS
}

/// How the engine chooses between interpreted and compiled pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompileMode {
    /// Never compile; always run the interpreted operators.
    Off,
    /// Compile every eligible pipeline (unsupported expressions still fall
    /// back per-pipeline to interpreted execution).
    On,
    /// Cost-based: compile only when [`compile_pays_off`] predicts a win
    /// for the query's input cardinality.
    #[default]
    Auto,
}

impl CompileMode {
    /// Reads the default mode from [`COMPILE_ENV`]; absent or unrecognized
    /// values mean [`CompileMode::Auto`].
    pub fn from_env() -> CompileMode {
        Self::parse(std::env::var(COMPILE_ENV).ok().as_deref())
    }

    fn parse(raw: Option<&str>) -> CompileMode {
        match raw.map(|s| s.trim().to_ascii_lowercase()).as_deref() {
            Some("off") | Some("0") | Some("false") => CompileMode::Off,
            Some("on") | Some("1") | Some("true") => CompileMode::On,
            _ => CompileMode::Auto,
        }
    }
}

impl fmt::Display for CompileMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CompileMode::Off => "off",
            CompileMode::On => "on",
            CompileMode::Auto => "auto",
        })
    }
}

/// One compiled kernel: batch in, column out.
type Kernel = Arc<dyn Fn(&RowBatch) -> Result<ColumnVector, StorageError> + Send + Sync>;

/// An expression lowered to a closure tree, specialized against one schema.
///
/// Cheap to clone (kernels are shared behind `Arc`) and `Send + Sync`, so
/// one compilation serves every morsel worker of a parallel query.
#[derive(Clone)]
pub struct CompiledExpr {
    kernel: Kernel,
}

impl fmt::Debug for CompiledExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CompiledExpr")
    }
}

impl CompiledExpr {
    /// Compiles `expr` against `schema`, or `None` when any node is outside
    /// the compilable subset (model-backed calls like `similarity`/`embed`,
    /// unknown functions or columns). A `None` is not an error: the caller
    /// runs the interpreted path, which reports the canonical error if the
    /// expression is genuinely invalid.
    pub fn compile(expr: &Expr, schema: &Schema) -> Option<CompiledExpr> {
        compile_kernel(expr, schema).map(|kernel| CompiledExpr { kernel })
    }

    /// Evaluates the compiled kernel over a batch: one value per row.
    pub fn eval(&self, batch: &RowBatch) -> Result<ColumnVector, StorageError> {
        (self.kernel)(batch)
    }
}

/// Scalar functions with value-level semantics the compiler may inline.
/// `similarity` and `embed` are deliberately absent: they are model-backed
/// (FAO) calls that the pipeline must fall back to interpreted operators
/// for, per the execution contract.
const COMPILABLE_CALLS: &[&str] = &[
    "lower", "upper", "length", "abs", "round", "contains", "coalesce", "min2", "max2", "clamp01",
];

fn cmp_bool(op: BinOp, ord: std::cmp::Ordering) -> bool {
    match op {
        BinOp::Eq => ord.is_eq(),
        BinOp::Ne => !ord.is_eq(),
        BinOp::Lt => ord.is_lt(),
        BinOp::Le => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        BinOp::Ge => ord.is_ge(),
        _ => unreachable!("cmp_bool only handles comparisons"),
    }
}

fn compile_kernel(expr: &Expr, schema: &Schema) -> Option<Kernel> {
    match expr {
        Expr::Col(name) => {
            let idx = schema.resolve(name).ok()?;
            Some(Arc::new(move |b: &RowBatch| Ok(b.column(idx).clone())))
        }
        Expr::Lit(v) => {
            let v = v.clone();
            Some(Arc::new(move |b: &RowBatch| {
                Ok(ColumnVector::repeat(&v, b.num_rows()))
            }))
        }
        Expr::Bin(op @ (BinOp::And | BinOp::Or), l, r) => {
            let lk = compile_kernel(l, schema)?;
            let rk = compile_kernel(r, schema)?;
            let op = *op;
            // The row path may short-circuit past erroring rows of the
            // right operand; keep the uncompiled expression around for the
            // same row-wise re-run the batch evaluator does.
            let fallback = expr.clone();
            let fallback_schema = schema.clone();
            Some(Arc::new(move |b: &RowBatch| {
                let lv = lk(b)?;
                match rk(b) {
                    Ok(rv) => Ok(combine_logical(op, &lv, &rv)),
                    Err(_) => fallback.eval_rows(b, &fallback_schema),
                }
            }))
        }
        Expr::Bin(op, l, r) => {
            let is_cmp = matches!(
                op,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            );
            // The hot filter shape — `int_column <cmp> int_literal` — gets a
            // dedicated kernel: no right-hand column materialization at all.
            // The payload check happens per batch (a column declared Int can
            // still arrive as a mixed `Any` payload); mismatches take the
            // general kernel with an identical result.
            if is_cmp {
                if let (Expr::Col(name), Expr::Lit(Value::Int(k))) = (l.as_ref(), r.as_ref()) {
                    let idx = schema.resolve(name).ok()?;
                    let (op, k) = (*op, *k);
                    return Some(Arc::new(move |b: &RowBatch| {
                        let col = b.column(idx);
                        let n = col.len();
                        if let Some(xs) = col.as_ints() {
                            let mut nulls = NullBitmap::new();
                            let mut out = Vec::with_capacity(n);
                            for (i, x) in xs.iter().enumerate() {
                                let null = col.is_null(i);
                                nulls.push(null);
                                out.push(!null && cmp_bool(op, x.cmp(&k)));
                            }
                            return Ok(ColumnVector::from_parts(ColumnData::Bool(out), nulls));
                        }
                        eval_bin_batch(op, col, &ColumnVector::repeat(&Value::Int(k), n))
                    }));
                }
            }
            let lk = compile_kernel(l, schema)?;
            let rk = compile_kernel(r, schema)?;
            let op = *op;
            Some(Arc::new(move |b: &RowBatch| {
                eval_bin_batch(op, &lk(b)?, &rk(b)?)
            }))
        }
        Expr::Not(e) => {
            let k = compile_kernel(e, schema)?;
            Some(Arc::new(move |b: &RowBatch| Ok(not_kernel(&k(b)?))))
        }
        Expr::Neg(e) => {
            let k = compile_kernel(e, schema)?;
            Some(Arc::new(move |b: &RowBatch| neg_kernel(&k(b)?)))
        }
        Expr::IsNull(e) => {
            let k = compile_kernel(e, schema)?;
            Some(Arc::new(move |b: &RowBatch| Ok(is_null_kernel(&k(b)?))))
        }
        Expr::Call(name, args) => {
            if !COMPILABLE_CALLS.contains(&name.as_str()) {
                return None;
            }
            let kernels: Vec<Kernel> = args
                .iter()
                .map(|a| compile_kernel(a, schema))
                .collect::<Option<_>>()?;
            let name = name.clone();
            Some(Arc::new(move |b: &RowBatch| {
                let cols: Vec<ColumnVector> =
                    kernels.iter().map(|k| k(b)).collect::<Result<_, _>>()?;
                call_kernel(&name, &cols, b.num_rows())
            }))
        }
    }
}

/// One projection output of a compiled pipeline.
#[derive(Debug, Clone)]
enum Output {
    /// A bare column reference: copy the input column through.
    Passthrough(usize),
    /// A computed expression.
    Computed(CompiledExpr),
}

/// A fused filter→project pipeline compiled against one input schema.
///
/// Where the interpreted engine stacks `Filter` and `Project` operators
/// (one virtual `next_batch` dispatch each per batch), the compiled
/// pipeline is a single [`CompiledPipeline::process`] call per batch:
/// evaluate the filter kernel, apply the mask, evaluate each output kernel.
/// Filter and projection semantics mirror the interpreted operators
/// exactly — all-pass batches pass through untouched, fully-filtered
/// batches yield `None`, `outputs == None` means bare `SELECT *`.
#[derive(Debug, Clone)]
pub struct CompiledPipeline {
    filter: Option<CompiledExpr>,
    outputs: Option<Vec<Output>>,
}

impl CompiledPipeline {
    /// Compiles a pipeline with an optional filter predicate and an
    /// optional projection list (`None` = no projection node, pass rows
    /// through). Returns `None` when any expression is uncompilable.
    pub fn compile(
        schema: &Schema,
        filter: Option<&Expr>,
        outputs: Option<&[(String, Expr)]>,
    ) -> Option<CompiledPipeline> {
        let filter = match filter {
            Some(f) => Some(CompiledExpr::compile(f, schema)?),
            None => None,
        };
        let outputs = match outputs {
            None => None,
            Some(items) => Some(
                items
                    .iter()
                    .map(|(_, e)| match e {
                        Expr::Col(name) => schema.resolve(name).ok().map(Output::Passthrough),
                        other => CompiledExpr::compile(other, schema).map(Output::Computed),
                    })
                    .collect::<Option<Vec<_>>>()?,
            ),
        };
        Some(CompiledPipeline { filter, outputs })
    }

    /// Whether the pipeline has a compiled filter kernel.
    pub fn has_filter(&self) -> bool {
        self.filter.is_some()
    }

    /// Pushes one batch through the fused pipeline. `Ok(None)` means the
    /// filter dropped every row (the caller keeps pulling, exactly like the
    /// interpreted `Filter` loop).
    pub fn process(&self, batch: RowBatch) -> Result<Option<RowBatch>, StorageError> {
        let b = match &self.filter {
            None => batch,
            Some(f) => {
                let keep = f.eval(&batch)?.truthy_mask();
                if keep.iter().all(|k| *k) {
                    batch
                } else if keep.iter().any(|k| *k) {
                    batch.filter(&keep)
                } else {
                    return Ok(None);
                }
            }
        };
        let Some(outputs) = &self.outputs else {
            return Ok(Some(b));
        };
        if outputs.is_empty() {
            return Ok(Some(RowBatch::from_rows(0, vec![Vec::new(); b.num_rows()])));
        }
        let mut columns = Vec::with_capacity(outputs.len());
        for out in outputs {
            columns.push(match out {
                Output::Passthrough(idx) => b.column(*idx).clone(),
                Output::Computed(e) => e.eval(&b)?,
            });
        }
        Ok(Some(
            RowBatch::from_columns(columns).expect("output kernels share the batch row count"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, Row};

    fn schema() -> Schema {
        Schema::of(&[
            ("year", DataType::Int),
            ("score", DataType::Float),
            ("title", DataType::Str),
        ])
    }

    fn rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1991), Value::Float(0.7), "Guilty".into()],
            vec![Value::Null, Value::Float(0.2), "Calm".into()],
            vec![Value::Int(1975), Value::Null, Value::Null],
            vec![Value::Int(2003), Value::Float(-1.5), "Null Island".into()],
        ]
    }

    fn batch() -> RowBatch {
        RowBatch::from_rows(3, rows())
    }

    /// Compiled evaluation must agree with the interpreted batch evaluator
    /// cell by cell (which itself is pinned to the row path).
    fn assert_compiled_parity(e: &Expr) {
        let s = schema();
        let b = batch();
        let compiled = CompiledExpr::compile(e, &s).unwrap_or_else(|| panic!("{e} must compile"));
        let want = e.eval_batch(&b, &s).unwrap();
        let got = compiled.eval(&b).unwrap();
        for i in 0..b.num_rows() {
            assert_eq!(got.value(i), want.value(i), "row {i}: {e}");
            assert_eq!(got.is_null(i), want.is_null(i), "row {i} nullness: {e}");
        }
    }

    #[test]
    fn compiled_kernels_match_interpreted_batch_eval() {
        let exprs = vec![
            Expr::col("year").bin(BinOp::Ge, Expr::lit(1988i64)),
            Expr::col("year").bin(BinOp::Add, Expr::lit(9i64)),
            Expr::col("score").bin(BinOp::Mul, Expr::lit(10.0)),
            Expr::col("year").bin(BinOp::Gt, Expr::col("score")),
            Expr::col("title").eq(Expr::lit("Guilty")),
            Expr::col("title").bin(BinOp::Add, Expr::lit("!")),
            Expr::Not(Box::new(Expr::col("year").eq(Expr::lit(1991i64)))),
            Expr::Neg(Box::new(Expr::col("score"))),
            Expr::Neg(Box::new(Expr::col("year"))),
            Expr::IsNull(Box::new(Expr::col("title"))),
            Expr::Call("lower".into(), vec![Expr::col("title")]),
            Expr::Call("coalesce".into(), vec![Expr::col("score"), Expr::lit(0.0)]),
            Expr::col("year")
                .eq(Expr::lit(1991i64))
                .and(Expr::col("score").bin(BinOp::Gt, Expr::lit(0.5))),
            Expr::col("year")
                .bin(BinOp::Lt, Expr::lit(1980i64))
                .bin(BinOp::Or, Expr::col("score").bin(BinOp::Gt, Expr::lit(0.5))),
            Expr::lit(Value::Null).and(Expr::col("year").eq(Expr::lit(1991i64))),
        ];
        for e in &exprs {
            assert_compiled_parity(e);
        }
    }

    #[test]
    fn int_literal_comparison_fast_path_matches() {
        for op in [
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ] {
            assert_compiled_parity(&Expr::col("year").bin(op, Expr::lit(1991i64)));
        }
    }

    #[test]
    fn short_circuit_error_masking_survives_compilation() {
        // x = 0 rows are short-circuited past the division on the row path;
        // the compiled AND must fall back row-wise rather than error.
        let s = Schema::of(&[("x", DataType::Int)]);
        let b = RowBatch::from_rows(1, vec![vec![Value::Int(0)], vec![Value::Int(2)]]);
        let e = Expr::col("x").bin(BinOp::Gt, Expr::lit(0i64)).and(
            Expr::lit(10i64)
                .bin(BinOp::Div, Expr::col("x"))
                .bin(BinOp::Gt, Expr::lit(1i64)),
        );
        let compiled = CompiledExpr::compile(&e, &s).unwrap();
        let want = e.eval_batch(&b, &s).unwrap();
        let got = compiled.eval(&b).unwrap();
        assert_eq!(got.value(0), want.value(0));
        assert_eq!(got.value(1), want.value(1));
        // An unconditional division by zero still errors.
        let e = Expr::lit(1i64).bin(BinOp::Div, Expr::col("x"));
        let compiled = CompiledExpr::compile(&e, &s).unwrap();
        assert!(compiled.eval(&b).is_err());
    }

    #[test]
    fn model_backed_calls_do_not_compile() {
        let s = schema();
        for e in [
            Expr::Call(
                "similarity".into(),
                vec![Expr::col("title"), Expr::lit("x")],
            ),
            Expr::Call("embed".into(), vec![Expr::col("title")]),
            Expr::Call("nope".into(), vec![]),
            Expr::col("missing"),
            // An uncompilable node anywhere poisons the whole expression.
            Expr::col("year").and(Expr::Call("embed".into(), vec![Expr::col("title")])),
        ] {
            assert!(
                CompiledExpr::compile(&e, &s).is_none(),
                "{e} must not compile"
            );
        }
    }

    #[test]
    fn pipeline_filters_and_projects_like_the_operators() {
        let s = schema();
        let filter = Expr::col("year").bin(BinOp::Ge, Expr::lit(1980i64));
        let outputs = vec![
            ("year".to_string(), Expr::col("year")),
            (
                "next".to_string(),
                Expr::col("year").bin(BinOp::Add, Expr::lit(1i64)),
            ),
        ];
        let p = CompiledPipeline::compile(&s, Some(&filter), Some(&outputs)).unwrap();
        assert!(p.has_filter());
        let out = p.process(batch()).unwrap().unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.row(0), vec![Value::Int(1991), Value::Int(1992)]);
        assert_eq!(out.row(1), vec![Value::Int(2003), Value::Int(2004)]);
        // A fully-filtered batch yields None, like the interpreted loop.
        let none = Expr::col("year").bin(BinOp::Gt, Expr::lit(9999i64));
        let p = CompiledPipeline::compile(&s, Some(&none), None).unwrap();
        assert!(p.process(batch()).unwrap().is_none());
        // No filter, no projection: the batch passes through untouched.
        let p = CompiledPipeline::compile(&s, None, None).unwrap();
        assert_eq!(p.process(batch()).unwrap().unwrap().num_rows(), 4);
        // An uncompilable projection poisons the pipeline.
        let fao = vec![(
            "sim".to_string(),
            Expr::Call(
                "similarity".into(),
                vec![Expr::col("title"), Expr::lit("x")],
            ),
        )];
        assert!(CompiledPipeline::compile(&s, None, Some(&fao)).is_none());
    }

    #[test]
    fn mode_parses_env_values() {
        assert_eq!(CompileMode::parse(None), CompileMode::Auto);
        assert_eq!(CompileMode::parse(Some("off")), CompileMode::Off);
        assert_eq!(CompileMode::parse(Some("0")), CompileMode::Off);
        assert_eq!(CompileMode::parse(Some("FALSE")), CompileMode::Off);
        assert_eq!(CompileMode::parse(Some("on")), CompileMode::On);
        assert_eq!(CompileMode::parse(Some("1")), CompileMode::On);
        assert_eq!(CompileMode::parse(Some(" True ")), CompileMode::On);
        assert_eq!(CompileMode::parse(Some("auto")), CompileMode::Auto);
        assert_eq!(CompileMode::parse(Some("garbage")), CompileMode::Auto);
        assert_eq!(CompileMode::default(), CompileMode::Auto);
        assert_eq!(CompileMode::On.to_string(), "on");
    }

    #[test]
    fn break_even_rule_is_strict() {
        assert!(!compile_pays_off(0));
        assert!(!compile_pays_off(COMPILE_BREAK_EVEN_ROWS));
        assert!(compile_pays_off(COMPILE_BREAK_EVEN_ROWS + 1));
    }
}
