//! Buffer pool: a bounded LRU cache of decoded column pages.
//!
//! Every paged table reads its column pages through a shared
//! [`BufferPool`]. The pool caches *decoded* pages (`Arc<ColumnVector>`)
//! under a page-count budget; when the budget is exceeded the
//! least-recently-used unpinned page is evicted and must be re-decoded (or
//! re-read from disk) on the next touch. The budget comes from
//! `KATHDB_POOL_PAGES` (default 4096 pages) or [`BufferPool::set_budget`].
//! Hit/miss/eviction and zone-map-skip counters feed `\pool` in the REPL
//! and `durability_status()` in the facade.

use crate::io::Io;
use crate::ColumnVector;
use crate::{StorageError, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Environment variable naming the pool budget in pages.
pub const POOL_PAGES_ENV: &str = "KATHDB_POOL_PAGES";

/// Default pool budget in pages when `KATHDB_POOL_PAGES` is unset.
pub const DEFAULT_POOL_PAGES: usize = 4096;

/// Identity of one column page of one paged table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageKey {
    /// Process-unique id of the owning [`crate::PagedTable`].
    pub table: u64,
    /// Column ordinal within the table.
    pub column: u32,
    /// Page ordinal within the column.
    pub page: u32,
}

struct Entry {
    col: Arc<ColumnVector>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<PageKey, Entry>,
    tick: u64,
}

/// Point-in-time snapshot of pool occupancy and counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStatus {
    /// Budget in pages.
    pub budget_pages: usize,
    /// Decoded pages currently resident.
    pub resident_pages: usize,
    /// Estimated bytes held by resident pages.
    pub resident_bytes: usize,
    /// Lookups served from the pool.
    pub hits: u64,
    /// Lookups that had to decode (or read) the page.
    pub misses: u64,
    /// Pages evicted to stay within budget.
    pub evictions: u64,
    /// Pages skipped by zone-map pruning before any decode.
    pub zone_skips: u64,
}

/// A bounded LRU cache of decoded column pages, shared by all paged tables
/// of one catalog.
#[derive(Debug)]
pub struct BufferPool {
    budget: AtomicUsize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    zone_skips: AtomicU64,
    /// The database's I/O seam: page reads, the WAL, and checkpoints of
    /// the catalog owning this pool all share it, so one `\faults` spec
    /// (or `KATHDB_FAULTS`) covers the whole durability path.
    io: Io,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("resident", &self.map.len())
            .finish()
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::from_env()
    }
}

impl BufferPool {
    /// A pool with an explicit page budget (min 1) over the real backend.
    pub fn with_budget(pages: usize) -> Self {
        Self::with_budget_io(pages, Io::real())
    }

    /// A pool with an explicit page budget and I/O seam.
    pub fn with_budget_io(pages: usize, io: Io) -> Self {
        Self {
            budget: AtomicUsize::new(pages.max(1)),
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            zone_skips: AtomicU64::new(0),
            io,
        }
    }

    /// A pool budgeted from `KATHDB_POOL_PAGES` (default
    /// [`DEFAULT_POOL_PAGES`]), with an I/O seam honouring `KATHDB_FAULTS`
    /// (test-only).
    pub fn from_env() -> Self {
        let pages = std::env::var(POOL_PAGES_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_POOL_PAGES);
        Self::with_budget_io(pages, Io::from_env())
    }

    /// The database's I/O seam (shared by page reads, the WAL, and
    /// checkpoints).
    pub fn io(&self) -> &Io {
        &self.io
    }

    /// Current budget in pages.
    pub fn budget(&self) -> usize {
        self.budget.load(Ordering::Relaxed) // lint: relaxed-ok — budget is a tuning knob; a stale read only delays eviction by one op
    }

    /// Re-budgets the pool, evicting down to the new cap immediately.
    pub fn set_budget(&self, pages: usize) {
        self.budget.store(pages.max(1), Ordering::Relaxed); // lint: relaxed-ok — budget is a tuning knob; a stale read only delays eviction by one op
        let mut inner = self.inner.lock();
        self.evict_to_budget(&mut inner, None);
    }

    /// Returns the decoded page for `key`, loading it with `loader` on a
    /// miss. The just-loaded page is never evicted by its own insertion,
    /// so the pool makes progress even with a 1-page budget.
    pub fn get_or_load<F>(&self, key: PageKey, loader: F) -> Result<Arc<ColumnVector>, StorageError>
    where
        F: FnOnce() -> Result<Arc<ColumnVector>, StorageError>,
    {
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok — telemetry counter
                return Ok(Arc::clone(&entry.col));
            }
        }
        // Decode outside the lock: concurrent scans of distinct pages
        // should not serialize on the pool mutex.
        self.misses.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok — telemetry counter
        let col = loader()?;
        let bytes = estimate_bytes(&col);
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key,
            Entry {
                col: Arc::clone(&col),
                bytes,
                last_used: tick,
            },
        );
        self.evict_to_budget(&mut inner, Some(key));
        Ok(col)
    }

    fn evict_to_budget(&self, inner: &mut Inner, keep: Option<PageKey>) {
        let budget = self.budget();
        while inner.map.len() > budget {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| Some(**k) != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    inner.map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok — telemetry counter
                }
                None => break, // only the pinned page remains
            }
        }
    }

    /// Drops every resident page of `table` (called when a paged table is
    /// dropped so its slots are not stranded in the pool).
    pub fn evict_table(&self, table: u64) {
        let mut inner = self.inner.lock();
        inner.map.retain(|k, _| k.table != table);
    }

    /// Records a page skipped via its zone map (pruned before decode).
    pub fn note_zone_skip(&self) {
        self.zone_skips.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok — telemetry counter
    }

    /// Snapshot of occupancy and counters.
    pub fn status(&self) -> PoolStatus {
        let inner = self.inner.lock();
        PoolStatus {
            budget_pages: self.budget(),
            resident_pages: inner.map.len(),
            resident_bytes: inner.map.values().map(|e| e.bytes).sum(),
            hits: self.hits.load(Ordering::Relaxed), // lint: relaxed-ok — stats snapshot; approximate reads are fine
            misses: self.misses.load(Ordering::Relaxed), // lint: relaxed-ok — stats snapshot; approximate reads are fine
            evictions: self.evictions.load(Ordering::Relaxed), // lint: relaxed-ok — stats snapshot; approximate reads are fine
            zone_skips: self.zone_skips.load(Ordering::Relaxed), // lint: relaxed-ok — stats snapshot; approximate reads are fine
        }
    }

    /// Zeroes the hit/miss/eviction/zone-skip counters (occupancy is kept).
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed); // lint: relaxed-ok — telemetry reset
        self.misses.store(0, Ordering::Relaxed); // lint: relaxed-ok — telemetry reset
        self.evictions.store(0, Ordering::Relaxed); // lint: relaxed-ok — telemetry reset
        self.zone_skips.store(0, Ordering::Relaxed); // lint: relaxed-ok — telemetry reset
    }
}

/// Rough heap footprint of a decoded page, for `resident_bytes` reporting.
fn estimate_bytes(col: &ColumnVector) -> usize {
    let mut bytes = std::mem::size_of::<ColumnVector>() + col.len() / 8;
    for i in 0..col.len() {
        bytes += match col.value(i) {
            Value::Null => 8,
            Value::Int(_) | Value::Float(_) | Value::Bool(_) => 8,
            Value::Str(s) => std::mem::size_of::<String>() + s.len(),
            Value::Blob(b) => std::mem::size_of::<Vec<u8>>() + b.len(),
        };
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(vals: &[i64]) -> Arc<ColumnVector> {
        Arc::new(ColumnVector::from_values(
            vals.iter().map(|&i| Value::Int(i)).collect(),
        ))
    }

    fn key(p: u32) -> PageKey {
        PageKey {
            table: 1,
            column: 0,
            page: p,
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let pool = BufferPool::with_budget(8);
        for _ in 0..3 {
            pool.get_or_load(key(0), || Ok(page(&[1, 2]))).unwrap();
        }
        let s = pool.status();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        assert_eq!(s.resident_pages, 1);
        assert!(s.resident_bytes > 0);
    }

    #[test]
    fn lru_evicts_the_coldest_page() {
        let pool = BufferPool::with_budget(2);
        pool.get_or_load(key(0), || Ok(page(&[0]))).unwrap();
        pool.get_or_load(key(1), || Ok(page(&[1]))).unwrap();
        pool.get_or_load(key(0), || Ok(page(&[0]))).unwrap(); // refresh 0
        pool.get_or_load(key(2), || Ok(page(&[2]))).unwrap(); // evicts 1
        let s = pool.status();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident_pages, 2);
        // Page 1 must reload; pages 0 and 2 are hits.
        pool.get_or_load(key(0), || panic!("0 should be resident"))
            .unwrap();
        pool.get_or_load(key(2), || panic!("2 should be resident"))
            .unwrap();
        let mut reloaded = false;
        pool.get_or_load(key(1), || {
            reloaded = true;
            Ok(page(&[1]))
        })
        .unwrap();
        assert!(reloaded);
    }

    #[test]
    fn one_page_budget_still_progresses() {
        let pool = BufferPool::with_budget(1);
        for p in 0..4 {
            let got = pool.get_or_load(key(p), || Ok(page(&[p as i64]))).unwrap();
            assert_eq!(got.value(0), Value::Int(p as i64));
        }
        let s = pool.status();
        assert_eq!(s.resident_pages, 1);
        assert_eq!(s.evictions, 3);
    }

    #[test]
    fn set_budget_evicts_down() {
        let pool = BufferPool::with_budget(4);
        for p in 0..4 {
            pool.get_or_load(key(p), || Ok(page(&[p as i64]))).unwrap();
        }
        pool.set_budget(2);
        assert_eq!(pool.status().resident_pages, 2);
        assert_eq!(pool.budget(), 2);
    }

    #[test]
    fn evict_table_clears_only_that_table() {
        let pool = BufferPool::with_budget(8);
        pool.get_or_load(key(0), || Ok(page(&[1]))).unwrap();
        pool.get_or_load(
            PageKey {
                table: 2,
                column: 0,
                page: 0,
            },
            || Ok(page(&[2])),
        )
        .unwrap();
        pool.evict_table(1);
        let s = pool.status();
        assert_eq!(s.resident_pages, 1);
    }

    #[test]
    fn loader_error_is_propagated_and_not_cached() {
        let pool = BufferPool::with_budget(2);
        let err = pool
            .get_or_load(key(0), || Err(StorageError::Corrupt("boom".into())))
            .unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
        assert_eq!(pool.status().resident_pages, 0);
        pool.get_or_load(key(0), || Ok(page(&[1]))).unwrap();
        assert_eq!(pool.status().resident_pages, 1);
    }
}
