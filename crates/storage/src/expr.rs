//! Scalar expressions evaluated against rows.
//!
//! Generated function bodies that are "a SQL query over a table" (§4) bottom
//! out here: filters, projections, and computed columns are all [`Expr`]s.

use crate::batch::{ColumnData, ColumnVector, NullBitmap, RowBatch};
use crate::{Row, Schema, StorageError, Value};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by name (resolved against the input schema at eval).
    Col(String),
    /// A literal value.
    Lit(Value),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `expr IS NULL`
    IsNull(Box<Expr>),
    /// Named scalar function call (`lower`, `upper`, `length`, `abs`,
    /// `contains`, `coalesce`, `round`, `min2`, `max2`, `clamp01`).
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Column reference helper.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self op other` helper.
    pub fn bin(self, op: BinOp, other: Expr) -> Expr {
        Expr::Bin(op, Box::new(self), Box::new(other))
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.bin(BinOp::Eq, other)
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        self.bin(BinOp::And, other)
    }

    /// Evaluates against a row positionally aligned with `schema`.
    pub fn eval(&self, row: &Row, schema: &Schema) -> Result<Value, StorageError> {
        match self {
            Expr::Col(name) => {
                let idx = schema.resolve(name)?;
                Ok(row[idx].clone())
            }
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Bin(op, l, r) => {
                let lv = l.eval(row, schema)?;
                // Short-circuit AND/OR with SQL three-valued collapse.
                match op {
                    BinOp::And => {
                        if !lv.is_null() && !lv.is_truthy() {
                            return Ok(Value::Bool(false));
                        }
                        let rv = r.eval(row, schema)?;
                        if lv.is_null() || rv.is_null() {
                            return Ok(Value::Null);
                        }
                        return Ok(Value::Bool(lv.is_truthy() && rv.is_truthy()));
                    }
                    BinOp::Or => {
                        if lv.is_truthy() {
                            return Ok(Value::Bool(true));
                        }
                        let rv = r.eval(row, schema)?;
                        if lv.is_null() || rv.is_null() {
                            return Ok(if rv.is_truthy() {
                                Value::Bool(true)
                            } else {
                                Value::Null
                            });
                        }
                        return Ok(Value::Bool(lv.is_truthy() || rv.is_truthy()));
                    }
                    _ => {}
                }
                let rv = r.eval(row, schema)?;
                eval_bin(*op, &lv, &rv)
            }
            Expr::Not(e) => {
                let v = e.eval(row, schema)?;
                if v.is_null() {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(!v.is_truthy()))
                }
            }
            Expr::Neg(e) => match e.eval(row, schema)? {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                Value::Null => Ok(Value::Null),
                v => Err(StorageError::Eval(format!("cannot negate {v:?}"))),
            },
            Expr::IsNull(e) => Ok(Value::Bool(e.eval(row, schema)?.is_null())),
            Expr::Call(name, args) => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| a.eval(row, schema))
                    .collect::<Result<_, _>>()?;
                eval_call(name, &vals)
            }
        }
    }

    /// Evaluates against a whole [`RowBatch`] at once, returning one value
    /// per row as a [`ColumnVector`].
    ///
    /// Semantics match [`Expr::eval`] row by row exactly — including SQL
    /// three-valued logic and `AND`/`OR` short-circuiting (a right operand
    /// that would error only on short-circuited rows does not error here
    /// either; such expressions fall back to row-at-a-time evaluation).
    /// Column references resolve once per batch instead of once per row,
    /// and Int/Float/Str columns run typed kernels.
    pub fn eval_batch(
        &self,
        batch: &RowBatch,
        schema: &Schema,
    ) -> Result<ColumnVector, StorageError> {
        let n = batch.num_rows();
        match self {
            Expr::Col(name) => {
                let idx = schema.resolve(name)?;
                Ok(batch.column(idx).clone())
            }
            Expr::Lit(v) => Ok(ColumnVector::repeat(v, n)),
            Expr::Bin(op @ (BinOp::And | BinOp::Or), l, r) => {
                let lv = l.eval_batch(batch, schema)?;
                match r.eval_batch(batch, schema) {
                    Ok(rv) => Ok(combine_logical(*op, &lv, &rv)),
                    // The row path may short-circuit past the erroring rows
                    // of the right operand; re-run row-wise to find out.
                    Err(_) => self.eval_rows(batch, schema),
                }
            }
            Expr::Bin(op, l, r) => {
                let lv = l.eval_batch(batch, schema)?;
                let rv = r.eval_batch(batch, schema)?;
                eval_bin_batch(*op, &lv, &rv)
            }
            Expr::Not(e) => Ok(not_kernel(&e.eval_batch(batch, schema)?)),
            Expr::Neg(e) => neg_kernel(&e.eval_batch(batch, schema)?),
            Expr::IsNull(e) => Ok(is_null_kernel(&e.eval_batch(batch, schema)?)),
            Expr::Call(name, args) if name == "similarity" && args.len() == 2 => {
                // Batched similarity kernel: the query side is typically a
                // literal — decode/embed it once per batch, not once per row.
                let query: Option<Option<Vec<f32>>> = match &args[1] {
                    Expr::Lit(v) => Some(similarity_arg(v)?),
                    _ => None,
                };
                let a = args[0].eval_batch(batch, schema)?;
                let b = match &query {
                    Some(_) => None,
                    None => Some(args[1].eval_batch(batch, schema)?),
                };
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let av = similarity_arg(&a.value(i))?;
                    let score = match (&av, &query, &b) {
                        (None, _, _) => Value::Null,
                        (Some(x), Some(Some(q)), _) => similarity_score(x, q),
                        (Some(_), Some(None), _) => Value::Null,
                        (Some(x), None, Some(col)) => match similarity_arg(&col.value(i))? {
                            Some(y) => similarity_score(x, &y),
                            None => Value::Null,
                        },
                        (Some(_), None, None) => unreachable!("query or column is set"),
                    };
                    out.push(score);
                }
                Ok(ColumnVector::from_values(out))
            }
            Expr::Call(name, args) => {
                let cols: Vec<ColumnVector> = args
                    .iter()
                    .map(|a| a.eval_batch(batch, schema))
                    .collect::<Result<_, _>>()?;
                call_kernel(name, &cols, n)
            }
        }
    }

    /// Row-at-a-time evaluation over a batch (exact-semantics fallback).
    pub(crate) fn eval_rows(
        &self,
        batch: &RowBatch,
        schema: &Schema,
    ) -> Result<ColumnVector, StorageError> {
        let mut out = Vec::with_capacity(batch.num_rows());
        for i in 0..batch.num_rows() {
            out.push(self.eval(&batch.row(i), schema)?);
        }
        Ok(ColumnVector::from_values(out))
    }

    /// The set of column names this expression reads (used by the optimizer
    /// for predicate pushdown and column pruning).
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Col(n) => out.push(n.clone()),
            Expr::Lit(_) => {}
            Expr::Bin(_, l, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            Expr::Not(e) | Expr::Neg(e) | Expr::IsNull(e) => e.collect_columns(out),
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_columns(out);
                }
            }
        }
    }
}

/// `NOT` over an evaluated operand column: three-valued negation (NULL
/// stays NULL). Shared by the batch evaluator and compiled kernels so the
/// two paths cannot drift.
pub(crate) fn not_kernel(v: &ColumnVector) -> ColumnVector {
    let truthy = v.truthy_mask();
    let mut nulls = NullBitmap::new();
    let mut out = Vec::with_capacity(truthy.len());
    for (i, t) in truthy.iter().enumerate() {
        let is_null = v.is_null(i);
        nulls.push(is_null);
        out.push(!is_null && !t);
    }
    ColumnVector::from_parts(ColumnData::Bool(out), nulls)
}

/// Arithmetic negation over an evaluated operand column, with Int/Float
/// fast paths and a per-value fallback for mixed columns.
pub(crate) fn neg_kernel(v: &ColumnVector) -> Result<ColumnVector, StorageError> {
    match v.data() {
        ColumnData::Int(xs) => Ok(ColumnVector::from_parts(
            ColumnData::Int(xs.iter().map(|x| -x).collect()),
            v.nulls().clone(),
        )),
        ColumnData::Float(xs) => Ok(ColumnVector::from_parts(
            ColumnData::Float(xs.iter().map(|x| -x).collect()),
            v.nulls().clone(),
        )),
        _ => {
            let n = v.len();
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(match v.value(i) {
                    Value::Int(x) => Value::Int(-x),
                    Value::Float(x) => Value::Float(-x),
                    Value::Null => Value::Null,
                    other => return Err(StorageError::Eval(format!("cannot negate {other:?}"))),
                });
            }
            Ok(ColumnVector::from_values(out))
        }
    }
}

/// `IS NULL` over an evaluated operand column: always-valid booleans.
pub(crate) fn is_null_kernel(v: &ColumnVector) -> ColumnVector {
    let n = v.len();
    let out: Vec<bool> = (0..n).map(|i| v.is_null(i)).collect();
    ColumnVector::from_parts(ColumnData::Bool(out), NullBitmap::all_valid(n))
}

/// A scalar function applied row-wise over already-evaluated argument
/// columns (the general `Call` path both evaluators share).
pub(crate) fn call_kernel(
    name: &str,
    cols: &[ColumnVector],
    n: usize,
) -> Result<ColumnVector, StorageError> {
    let mut out = Vec::with_capacity(n);
    let mut vals: Vec<Value> = Vec::with_capacity(cols.len());
    for i in 0..n {
        vals.clear();
        vals.extend(cols.iter().map(|c| c.value(i)));
        out.push(eval_call(name, &vals)?);
    }
    Ok(ColumnVector::from_values(out))
}

/// Element-wise three-valued `AND`/`OR` over two evaluated operand columns.
/// Mirrors the collapse rules of [`Expr::eval`] exactly.
pub(crate) fn combine_logical(op: BinOp, l: &ColumnVector, r: &ColumnVector) -> ColumnVector {
    let n = l.len();
    let lt = l.truthy_mask();
    let rt = r.truthy_mask();
    let mut out = Vec::with_capacity(n);
    let mut nulls = NullBitmap::new();
    for i in 0..n {
        let (ln, rn) = (l.is_null(i), r.is_null(i));
        let (cell, is_null) = match op {
            BinOp::And => {
                if !ln && !lt[i] {
                    (false, false)
                } else if ln || rn {
                    (false, true)
                } else {
                    (lt[i] && rt[i], false)
                }
            }
            BinOp::Or => {
                if lt[i] {
                    (true, false)
                } else if ln || rn {
                    if rt[i] {
                        (true, false)
                    } else {
                        (false, true)
                    }
                } else {
                    (lt[i] || rt[i], false)
                }
            }
            _ => unreachable!("combine_logical only handles AND/OR"),
        };
        out.push(cell);
        nulls.push(is_null);
    }
    ColumnVector::from_parts(ColumnData::Bool(out), nulls)
}

/// Whether a column is purely numeric (Int or Float payload).
fn is_numeric(c: &ColumnVector) -> bool {
    matches!(c.data(), ColumnData::Int(_) | ColumnData::Float(_))
}

/// Element-wise binary operation over two operand columns, with typed fast
/// paths for Int/Int, numeric, and Str/Str operands; everything else falls
/// back to [`eval_bin`] per element (identical semantics either way).
pub(crate) fn eval_bin_batch(
    op: BinOp,
    l: &ColumnVector,
    r: &ColumnVector,
) -> Result<ColumnVector, StorageError> {
    use BinOp::*;
    let n = l.len();
    debug_assert_eq!(n, r.len());

    let cmp_bool = |ord: std::cmp::Ordering| match op {
        Eq => ord.is_eq(),
        Ne => !ord.is_eq(),
        Lt => ord.is_lt(),
        Le => ord.is_le(),
        Gt => ord.is_gt(),
        Ge => ord.is_ge(),
        _ => unreachable!(),
    };
    let is_cmp = matches!(op, Eq | Ne | Lt | Le | Gt | Ge);

    // Int ⊗ Int: integral arithmetic and total comparisons.
    if let (Some(a), Some(b)) = (l.as_ints(), r.as_ints()) {
        let mut nulls = NullBitmap::new();
        if is_cmp {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let null = l.is_null(i) || r.is_null(i);
                nulls.push(null);
                out.push(!null && cmp_bool(a[i].cmp(&b[i])));
            }
            return Ok(ColumnVector::from_parts(ColumnData::Bool(out), nulls));
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let null = l.is_null(i) || r.is_null(i);
            nulls.push(null);
            if null {
                out.push(0);
                continue;
            }
            out.push(match op {
                Add => a[i].wrapping_add(b[i]),
                Sub => a[i].wrapping_sub(b[i]),
                Mul => a[i].wrapping_mul(b[i]),
                Div => {
                    if b[i] == 0 {
                        return Err(StorageError::Eval("division by zero".into()));
                    }
                    a[i] / b[i]
                }
                Mod => {
                    if b[i] == 0 {
                        return Err(StorageError::Eval("modulo by zero".into()));
                    }
                    a[i] % b[i]
                }
                _ => unreachable!(),
            });
        }
        return Ok(ColumnVector::from_parts(ColumnData::Int(out), nulls));
    }

    // Int ⊗ Float comparisons: the exact integer-aware compare, element by
    // element — widening ints through `numeric_at` would collapse values
    // above 2^53 and disagree with the row path's `sql_cmp`.
    if is_cmp {
        let int_float: Option<Vec<Option<std::cmp::Ordering>>> =
            if let (Some(a), Some(b)) = (l.as_ints(), r.as_floats()) {
                Some((0..n).map(|i| crate::cmp_int_f64(a[i], b[i])).collect())
            } else if let (Some(a), Some(b)) = (l.as_floats(), r.as_ints()) {
                Some(
                    (0..n)
                        .map(|i| crate::cmp_int_f64(b[i], a[i]).map(std::cmp::Ordering::reverse))
                        .collect(),
                )
            } else {
                None
            };
        if let Some(ords) = int_float {
            let mut nulls = NullBitmap::new();
            let mut out = Vec::with_capacity(n);
            for (i, ord) in ords.into_iter().enumerate() {
                match ord.filter(|_| !l.is_null(i) && !r.is_null(i)) {
                    Some(o) => {
                        nulls.push(false);
                        out.push(cmp_bool(o));
                    }
                    None => {
                        nulls.push(true);
                        out.push(false);
                    }
                }
            }
            return Ok(ColumnVector::from_parts(ColumnData::Bool(out), nulls));
        }
    }

    // Numeric ⊗ numeric with at least one Float side: f64 kernels.
    if is_numeric(l) && is_numeric(r) {
        let mut nulls = NullBitmap::new();
        if is_cmp {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                match (l.numeric_at(i), r.numeric_at(i)) {
                    (Some(a), Some(b)) => {
                        // NaN comparisons are NULL, as in the row path.
                        match a.partial_cmp(&b) {
                            Some(ord) => {
                                nulls.push(false);
                                out.push(cmp_bool(ord));
                            }
                            None => {
                                nulls.push(true);
                                out.push(false);
                            }
                        }
                    }
                    _ => {
                        nulls.push(true);
                        out.push(false);
                    }
                }
            }
            return Ok(ColumnVector::from_parts(ColumnData::Bool(out), nulls));
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            match (l.numeric_at(i), r.numeric_at(i)) {
                (Some(a), Some(b)) => {
                    nulls.push(false);
                    out.push(match op {
                        Add => a + b,
                        Sub => a - b,
                        Mul => a * b,
                        Div => {
                            if b == 0.0 {
                                return Err(StorageError::Eval("division by zero".into()));
                            }
                            a / b
                        }
                        Mod => a % b,
                        _ => unreachable!(),
                    });
                }
                _ => {
                    nulls.push(true);
                    out.push(0.0);
                }
            }
        }
        return Ok(ColumnVector::from_parts(ColumnData::Float(out), nulls));
    }

    // Str ⊗ Str: comparisons and `+` concatenation.
    if let (Some(a), Some(b)) = (l.as_strs(), r.as_strs()) {
        let mut nulls = NullBitmap::new();
        if is_cmp {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let null = l.is_null(i) || r.is_null(i);
                nulls.push(null);
                out.push(!null && cmp_bool(a[i].cmp(&b[i])));
            }
            return Ok(ColumnVector::from_parts(ColumnData::Bool(out), nulls));
        }
        if op == Add {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let null = l.is_null(i) || r.is_null(i);
                nulls.push(null);
                out.push(if null {
                    String::new()
                } else {
                    format!("{}{}", a[i], b[i])
                });
            }
            return Ok(ColumnVector::from_parts(ColumnData::Str(out), nulls));
        }
    }

    // General fallback: exact row-path semantics per element.
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(eval_bin(op, &l.value(i), &r.value(i))?);
    }
    Ok(ColumnVector::from_values(out))
}

fn eval_bin(op: BinOp, l: &Value, r: &Value) -> Result<Value, StorageError> {
    use BinOp::*;
    // Comparisons: SQL semantics — NULL operand yields NULL.
    if matches!(op, Eq | Ne | Lt | Le | Gt | Ge) {
        return Ok(match l.sql_cmp(r) {
            None => Value::Null,
            Some(ord) => Value::Bool(match op {
                Eq => ord.is_eq(),
                Ne => !ord.is_eq(),
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                _ => unreachable!(),
            }),
        });
    }
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // String concatenation via `+`.
    if op == Add {
        if let (Value::Str(a), Value::Str(b)) = (l, r) {
            return Ok(Value::Str(format!("{a}{b}")));
        }
    }
    // Integer arithmetic stays integral when both sides are ints.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return match op {
            Add => Ok(Value::Int(a.wrapping_add(*b))),
            Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            Div => {
                if *b == 0 {
                    Err(StorageError::Eval("division by zero".into()))
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            Mod => {
                if *b == 0 {
                    Err(StorageError::Eval("modulo by zero".into()))
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            _ => unreachable!(),
        };
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(StorageError::Eval(format!(
                "cannot apply {op} to {l:?} and {r:?}"
            )))
        }
    };
    match op {
        Add => Ok(Value::Float(a + b)),
        Sub => Ok(Value::Float(a - b)),
        Mul => Ok(Value::Float(a * b)),
        Div => {
            if b == 0.0 {
                Err(StorageError::Eval("division by zero".into()))
            } else {
                Ok(Value::Float(a / b))
            }
        }
        Mod => Ok(Value::Float(a % b)),
        _ => unreachable!(),
    }
}

fn eval_call(name: &str, args: &[Value]) -> Result<Value, StorageError> {
    let need = |n: usize| {
        if args.len() != n {
            Err(StorageError::Eval(format!(
                "function {name} expects {n} argument(s), got {}",
                args.len()
            )))
        } else {
            Ok(())
        }
    };
    match name {
        "lower" => {
            need(1)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Str(s.to_lowercase())),
                Value::Null => Ok(Value::Null),
                v => Err(StorageError::Eval(format!("lower expects STR, got {v:?}"))),
            }
        }
        "upper" => {
            need(1)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Str(s.to_uppercase())),
                Value::Null => Ok(Value::Null),
                v => Err(StorageError::Eval(format!("upper expects STR, got {v:?}"))),
            }
        }
        "length" => {
            need(1)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                Value::Blob(b) => Ok(Value::Int(b.len() as i64)),
                Value::Null => Ok(Value::Null),
                v => Err(StorageError::Eval(format!("length expects STR, got {v:?}"))),
            }
        }
        "abs" => {
            need(1)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                Value::Null => Ok(Value::Null),
                v => Err(StorageError::Eval(format!("abs expects number, got {v:?}"))),
            }
        }
        "round" => {
            need(2)?;
            let v = args[0]
                .as_f64()
                .ok_or_else(|| StorageError::Eval("round expects number".into()))?;
            let d = args[1]
                .as_int()
                .ok_or_else(|| StorageError::Eval("round expects int digits".into()))?;
            let m = 10f64.powi(d as i32);
            Ok(Value::Float((v * m).round() / m))
        }
        "contains" => {
            need(2)?;
            match (&args[0], &args[1]) {
                (Value::Str(h), Value::Str(n)) => {
                    Ok(Value::Bool(h.to_lowercase().contains(&n.to_lowercase())))
                }
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                _ => Err(StorageError::Eval("contains expects (STR, STR)".into())),
            }
        }
        "coalesce" => {
            for a in args {
                if !a.is_null() {
                    return Ok(a.clone());
                }
            }
            Ok(Value::Null)
        }
        "min2" | "max2" => {
            need(2)?;
            if args[0].is_null() {
                return Ok(args[1].clone());
            }
            if args[1].is_null() {
                return Ok(args[0].clone());
            }
            let ord = args[0]
                .sql_cmp(&args[1])
                .ok_or_else(|| StorageError::Eval("incomparable arguments".into()))?;
            let pick_first = if name == "min2" {
                ord.is_le()
            } else {
                ord.is_ge()
            };
            Ok(if pick_first {
                args[0].clone()
            } else {
                args[1].clone()
            })
        }
        "clamp01" => {
            need(1)?;
            match args[0].as_f64() {
                Some(f) => Ok(Value::Float(f.clamp(0.0, 1.0))),
                None if args[0].is_null() => Ok(Value::Null),
                None => Err(StorageError::Eval("clamp01 expects number".into())),
            }
        }
        "similarity" => {
            need(2)?;
            match (similarity_arg(&args[0])?, similarity_arg(&args[1])?) {
                (Some(a), Some(b)) => Ok(similarity_score(&a, &b)),
                _ => Ok(Value::Null),
            }
        }
        "embed" => {
            need(1)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Blob(crate::vecindex::encode_embedding(
                    &kath_vector::embed_query(s),
                ))),
                Value::Null => Ok(Value::Null),
                v => Err(StorageError::Eval(format!("embed expects STR, got {v:?}"))),
            }
        }
        other => Err(StorageError::Eval(format!("unknown function '{other}'"))),
    }
}

/// Resolves one `similarity` argument to an embedding: BLOB cells decode
/// (corrupt ones to `None` = no match, never an error — one bad cell must
/// not kill the query), STR cells embed through the canonical shared
/// embedder, NULL is unknown. Anything else is a type error.
fn similarity_arg(v: &Value) -> Result<Option<Vec<f32>>, StorageError> {
    match v {
        Value::Null => Ok(None),
        Value::Blob(b) => Ok(crate::vecindex::decode_embedding(b)),
        Value::Str(s) => Ok(Some(kath_vector::embed_query(s))),
        v => Err(StorageError::Eval(format!(
            "similarity expects BLOB or STR, got {v:?}"
        ))),
    }
}

/// Cosine similarity as a SQL value: mismatched dimensionalities and
/// non-finite scores (corrupt embeddings) are NULL — no match, never a
/// truncated-dot garbage score — so they rank last under `ORDER BY ...
/// DESC`, exactly where the vector index's top-k padding puts them.
fn similarity_score(a: &[f32], b: &[f32]) -> Value {
    if a.len() != b.len() {
        return Value::Null;
    }
    let c = kath_vector::cosine(a, b);
    if c.is_finite() {
        Value::Float(c as f64)
    } else {
        Value::Null
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(n) => f.write_str(n),
            Expr::Lit(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Bin(op, l, r) => write!(f, "({l} {op} {r})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataType;

    fn schema() -> Schema {
        Schema::of(&[
            ("year", DataType::Int),
            ("score", DataType::Float),
            ("title", DataType::Str),
        ])
    }

    fn row() -> Row {
        vec![Value::Int(1991), Value::Float(0.7), "Guilty".into()]
    }

    #[test]
    fn arithmetic_and_comparison() {
        let s = schema();
        let r = row();
        let e = Expr::col("year").bin(BinOp::Add, Expr::lit(9i64));
        assert_eq!(e.eval(&r, &s).unwrap(), Value::Int(2000));
        let e = Expr::col("score").bin(BinOp::Mul, Expr::lit(10.0));
        assert_eq!(e.eval(&r, &s).unwrap(), Value::Float(7.0));
        let e = Expr::col("year").bin(BinOp::Ge, Expr::lit(1990i64));
        assert_eq!(e.eval(&r, &s).unwrap(), Value::Bool(true));
    }

    #[test]
    fn null_propagation() {
        let s = Schema::of(&[("x", DataType::Int)]);
        let r = vec![Value::Null];
        let e = Expr::col("x").bin(BinOp::Add, Expr::lit(1i64));
        assert_eq!(e.eval(&r, &s).unwrap(), Value::Null);
        let e = Expr::col("x").eq(Expr::lit(1i64));
        assert_eq!(e.eval(&r, &s).unwrap(), Value::Null);
        let e = Expr::IsNull(Box::new(Expr::col("x")));
        assert_eq!(e.eval(&r, &s).unwrap(), Value::Bool(true));
    }

    #[test]
    fn short_circuit_and_or() {
        let s = Schema::of(&[("x", DataType::Int)]);
        let r = vec![Value::Int(0)];
        // AND with false left never evaluates the erroring right side.
        let bad = Expr::col("x").bin(BinOp::Div, Expr::lit(0i64));
        let e = Expr::col("x").and(bad.clone());
        assert_eq!(e.eval(&r, &s).unwrap(), Value::Bool(false));
        // OR with true left likewise.
        let e = Expr::lit(true).bin(BinOp::Or, bad);
        assert_eq!(e.eval(&r, &s).unwrap(), Value::Bool(true));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let s = schema();
        let e = Expr::lit(1i64).bin(BinOp::Div, Expr::lit(0i64));
        assert!(e.eval(&row(), &s).is_err());
    }

    #[test]
    fn string_functions() {
        let s = schema();
        let r = row();
        let e = Expr::Call("lower".into(), vec![Expr::col("title")]);
        assert_eq!(e.eval(&r, &s).unwrap(), Value::Str("guilty".into()));
        let e = Expr::Call(
            "contains".into(),
            vec![Expr::col("title"), Expr::lit("GUIL")],
        );
        assert_eq!(e.eval(&r, &s).unwrap(), Value::Bool(true));
        let e = Expr::Call("length".into(), vec![Expr::col("title")]);
        assert_eq!(e.eval(&r, &s).unwrap(), Value::Int(6));
    }

    #[test]
    fn weighted_sum_matches_paper_fig5() {
        // final_score = 0.7 * excitement + 0.3 * recency (Fig. 5).
        let s = Schema::of(&[("exc", DataType::Float), ("rec", DataType::Float)]);
        let r = vec![Value::Float(0.99999988), Value::Float(1.0)];
        let e = Expr::col("exc")
            .bin(BinOp::Mul, Expr::lit(0.7))
            .bin(BinOp::Add, Expr::col("rec").bin(BinOp::Mul, Expr::lit(0.3)));
        let v = e.eval(&r, &s).unwrap().as_f64().unwrap();
        assert!((v - 0.99999992).abs() < 1e-8);
    }

    #[test]
    fn referenced_columns_dedups() {
        let e = Expr::col("a")
            .bin(BinOp::Add, Expr::col("b"))
            .bin(BinOp::Mul, Expr::col("a"));
        assert_eq!(
            e.referenced_columns(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn unknown_function_and_column_error() {
        let s = schema();
        assert!(Expr::Call("nope".into(), vec![]).eval(&row(), &s).is_err());
        assert!(Expr::col("missing").eval(&row(), &s).is_err());
    }

    #[test]
    fn display_round_trips_visually() {
        let e = Expr::col("year").bin(BinOp::Ge, Expr::lit(1990i64));
        assert_eq!(e.to_string(), "(year >= 1990)");
    }

    fn batch_of(rows: Vec<Row>, arity: usize) -> RowBatch {
        RowBatch::from_rows(arity, rows)
    }

    /// Asserts eval_batch agrees with eval on every row.
    fn assert_parity(e: &Expr, rows: Vec<Row>, schema: &Schema) {
        let batch = batch_of(rows.clone(), schema.arity());
        let col = e.eval_batch(&batch, schema).unwrap();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(col.value(i), e.eval(row, schema).unwrap(), "row {i}: {e}");
        }
    }

    #[test]
    fn batch_eval_matches_row_eval() {
        let s = Schema::of(&[
            ("year", DataType::Int),
            ("score", DataType::Float),
            ("title", DataType::Str),
        ]);
        let rows = vec![
            vec![Value::Int(1991), Value::Float(0.7), "Guilty".into()],
            vec![Value::Null, Value::Float(0.2), "Calm".into()],
            vec![Value::Int(1975), Value::Null, Value::Null],
        ];
        let exprs = vec![
            Expr::col("year").bin(BinOp::Ge, Expr::lit(1988i64)),
            Expr::col("year").bin(BinOp::Add, Expr::lit(9i64)),
            Expr::col("score").bin(BinOp::Mul, Expr::lit(10.0)),
            Expr::col("year").bin(BinOp::Gt, Expr::col("score")),
            Expr::col("title").eq(Expr::lit("Guilty")),
            Expr::col("title").bin(BinOp::Add, Expr::lit("!")),
            Expr::Not(Box::new(Expr::col("year").eq(Expr::lit(1991i64)))),
            Expr::Neg(Box::new(Expr::col("score"))),
            Expr::Neg(Box::new(Expr::col("year"))),
            Expr::IsNull(Box::new(Expr::col("title"))),
            Expr::Call("lower".into(), vec![Expr::col("title")]),
            Expr::Call("coalesce".into(), vec![Expr::col("score"), Expr::lit(0.0)]),
            Expr::col("year")
                .eq(Expr::lit(1991i64))
                .and(Expr::col("score").bin(BinOp::Gt, Expr::lit(0.5))),
            Expr::col("year")
                .bin(BinOp::Lt, Expr::lit(1980i64))
                .bin(BinOp::Or, Expr::col("score").bin(BinOp::Gt, Expr::lit(0.5))),
            Expr::lit(Value::Null).and(Expr::col("year").eq(Expr::lit(1991i64))),
        ];
        for e in &exprs {
            assert_parity(e, rows.clone(), &s);
        }
    }

    #[test]
    fn batch_short_circuit_protects_erroring_right_side() {
        // x = 0 rows are short-circuited past the division; the batch path
        // must not error where the row path does not.
        let s = Schema::of(&[("x", DataType::Int)]);
        let rows = vec![vec![Value::Int(0)], vec![Value::Int(2)]];
        let e = Expr::col("x").bin(BinOp::Gt, Expr::lit(0i64)).and(
            Expr::lit(10i64)
                .bin(BinOp::Div, Expr::col("x"))
                .bin(BinOp::Gt, Expr::lit(1i64)),
        );
        assert_parity(&e, rows, &s);
    }

    #[test]
    fn batch_division_by_zero_still_errors() {
        let s = Schema::of(&[("x", DataType::Int)]);
        let batch = batch_of(vec![vec![Value::Int(0)]], 1);
        let e = Expr::lit(1i64).bin(BinOp::Div, Expr::col("x"));
        assert!(e.eval_batch(&batch, &s).is_err());
        // But NULL divisor propagates NULL before the zero check, as in the
        // row path.
        let batch = batch_of(vec![vec![Value::Null]], 1);
        assert_eq!(e.eval_batch(&batch, &s).unwrap().value(0), Value::Null);
    }

    #[test]
    fn batch_eval_on_mixed_type_column_falls_back() {
        let s = Schema::of(&[("v", DataType::Any)]);
        let rows = vec![
            vec![Value::Int(3)],
            vec![Value::Float(1.5)],
            vec![Value::Null],
        ];
        assert_parity(
            &Expr::col("v").bin(BinOp::Gt, Expr::lit(2i64)),
            rows.clone(),
            &s,
        );
        assert_parity(&Expr::col("v").bin(BinOp::Add, Expr::lit(1i64)), rows, &s);
    }

    #[test]
    fn similarity_and_embed_functions() {
        use crate::encode_embedding;
        let s = Schema::of(&[("emb", DataType::Blob), ("body", DataType::Str)]);
        let gun = encode_embedding(&kath_vector::embed_query("gun"));
        let row: Row = vec![Value::Blob(gun), "murder weapon".into()];
        // Blob vs query text: related concepts score high.
        let e = Expr::Call(
            "similarity".into(),
            vec![Expr::col("emb"), Expr::lit("weapon")],
        );
        let v = e.eval(&row, &s).unwrap().as_f64().unwrap();
        assert!(v > 0.5, "related terms must be similar, got {v}");
        // Str column embeds on the fly.
        let e = Expr::Call(
            "similarity".into(),
            vec![Expr::col("body"), Expr::lit("gun")],
        );
        assert!(e.eval(&row, &s).unwrap().as_f64().unwrap() > 0.3);
        // EMBED('text') produces exactly the canonical encoding.
        let e = Expr::Call("embed".into(), vec![Expr::lit("weapon")]);
        let Value::Blob(b) = e.eval(&row, &s).unwrap() else {
            panic!("embed must return a blob")
        };
        assert_eq!(b, encode_embedding(&kath_vector::embed_query("weapon")));
        // NULL and corrupt blobs are no-matches (NULL), not errors.
        let e = Expr::Call(
            "similarity".into(),
            vec![Expr::lit(Value::Null), Expr::lit("x")],
        );
        assert_eq!(e.eval(&row, &s).unwrap(), Value::Null);
        let e = Expr::Call(
            "similarity".into(),
            vec![Expr::lit(Value::Blob(vec![1, 2, 3])), Expr::lit("x")],
        );
        assert_eq!(e.eval(&row, &s).unwrap(), Value::Null);
        // Non-embedding operands are type errors.
        let e = Expr::Call("similarity".into(), vec![Expr::lit(1i64), Expr::lit("x")]);
        assert!(e.eval(&row, &s).is_err());
        assert!(Expr::Call("embed".into(), vec![Expr::lit(1i64)])
            .eval(&row, &s)
            .is_err());
    }

    #[test]
    fn batch_similarity_kernel_matches_row_path() {
        use crate::encode_embedding;
        let s = Schema::of(&[("emb", DataType::Blob), ("body", DataType::Str)]);
        let rows: Vec<Row> = vec![
            vec![
                Value::Blob(encode_embedding(&kath_vector::embed_query("gun"))),
                "murder".into(),
            ],
            vec![Value::Null, "tea".into()],
            vec![Value::Blob(vec![9]), "garden walk".into()], // corrupt blob
            vec![
                Value::Blob(encode_embedding(&kath_vector::embed_query("tea"))),
                Value::Null,
            ],
        ];
        let exprs = vec![
            Expr::Call(
                "similarity".into(),
                vec![Expr::col("emb"), Expr::lit("weapon")],
            ),
            Expr::Call(
                "similarity".into(),
                vec![Expr::col("body"), Expr::lit("calm")],
            ),
            Expr::Call(
                "similarity".into(),
                vec![Expr::col("emb"), Expr::col("body")],
            ),
            Expr::Call("embed".into(), vec![Expr::col("body")]),
        ];
        for e in &exprs {
            assert_parity(e, rows.clone(), &s);
        }
    }

    #[test]
    fn batch_int_float_comparison_is_exact() {
        // The typed Int×Float kernel must agree with the (now precise)
        // row path above 2^53.
        let s = Schema::of(&[("i", DataType::Int), ("f", DataType::Float)]);
        let big = (1i64 << 53) + 1;
        let rows: Vec<Row> = vec![
            vec![Value::Int(big), Value::Float((1i64 << 53) as f64)],
            vec![Value::Int(3), Value::Float(3.0)],
            vec![Value::Int(1), Value::Float(1.5)],
            vec![Value::Null, Value::Float(0.0)],
            vec![Value::Int(0), Value::Float(f64::NAN)],
        ];
        for op in [
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ] {
            assert_parity(&Expr::col("i").bin(op, Expr::col("f")), rows.clone(), &s);
            assert_parity(&Expr::col("f").bin(op, Expr::col("i")), rows.clone(), &s);
        }
    }

    #[test]
    fn batch_unknown_column_errors() {
        let s = Schema::of(&[("x", DataType::Int)]);
        let batch = batch_of(vec![vec![Value::Int(1)]], 1);
        assert!(Expr::col("missing").eval_batch(&batch, &s).is_err());
    }
}
