//! In-memory tables: the materialization unit of KathDB.
//!
//! Every intermediate result in a KathDB pipeline is materialized as a table
//! so that lineage can reference it (§3) and the explainer can show it (§5).

use crate::{Row, Schema, StorageError, Value};
use std::fmt;

/// A named, schema-checked collection of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// An empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Self {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Builds a table from rows, validating each against the schema.
    pub fn from_rows(
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Row>,
    ) -> Result<Self, StorageError> {
        let mut t = Table::new(name, schema);
        for row in rows {
            t.push(row)?;
        }
        Ok(t)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the table (used when an intermediate result is registered
    /// under the `output` name its plan node declared).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// A row by position.
    pub fn row(&self, idx: usize) -> Option<&Row> {
        self.rows.get(idx)
    }

    /// Appends a validated row.
    pub fn push(&mut self, row: Row) -> Result<(), StorageError> {
        self.schema.check_row(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Appends many validated rows.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<(), StorageError> {
        for row in rows {
            self.push(row)?;
        }
        Ok(())
    }

    /// Reads one cell by row index and column name.
    pub fn cell(&self, row: usize, column: &str) -> Result<&Value, StorageError> {
        let c = self.schema.resolve(column)?;
        self.rows
            .get(row)
            .map(|r| &r[c])
            .ok_or_else(|| StorageError::Eval(format!("row {row} out of bounds")))
    }

    /// All values of one column.
    pub fn column_values(&self, column: &str) -> Result<Vec<&Value>, StorageError> {
        let c = self.schema.resolve(column)?;
        Ok(self.rows.iter().map(|r| &r[c]).collect())
    }

    /// The first `n` rows, as a new table (the "rows sampler" database
    /// utility owned by the plan verifier's tool user, §4).
    pub fn sample(&self, n: usize) -> Table {
        Table {
            name: format!("{}_sample", self.name),
            schema: self.schema.clone(),
            rows: self.rows.iter().take(n).cloned().collect(),
        }
    }

    /// Finds the first row index where `column == value`.
    pub fn find(&self, column: &str, value: &Value) -> Result<Option<usize>, StorageError> {
        let c = self.schema.resolve(column)?;
        Ok(self.rows.iter().position(|r| &r[c] == value))
    }

    /// Renders the table as an aligned ASCII grid, the way the paper's
    /// figures print result tables (Fig. 6).
    pub fn render(&self) -> String {
        let headers: Vec<String> = self.schema.names().iter().map(|s| s.to_string()).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::render).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {:w$} |", h, w = w));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rendered {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {:w$} |", cell, w = w));
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{} rows]", self.name, self.schema, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataType;

    fn movies() -> Table {
        let schema = Schema::of(&[("title", DataType::Str), ("year", DataType::Int)]);
        Table::from_rows(
            "movies",
            schema,
            vec![
                vec!["Guilty by Suspicion".into(), Value::Int(1991)],
                vec!["Clean and Sober".into(), Value::Int(1988)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn push_validates_schema() {
        let mut t = movies();
        assert!(t.push(vec![Value::Int(5), Value::Int(2000)]).is_err());
        assert!(t.push(vec!["New".into(), Value::Int(2000)]).is_ok());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn cell_and_find() {
        let t = movies();
        assert_eq!(
            t.cell(0, "title").unwrap().as_str(),
            Some("Guilty by Suspicion")
        );
        assert_eq!(t.find("year", &Value::Int(1988)).unwrap(), Some(1));
        assert_eq!(t.find("year", &Value::Int(1900)).unwrap(), None);
        assert!(t.cell(0, "nope").is_err());
    }

    #[test]
    fn sample_truncates() {
        let t = movies();
        assert_eq!(t.sample(1).len(), 1);
        assert_eq!(t.sample(10).len(), 2);
    }

    #[test]
    fn render_contains_all_cells() {
        let r = movies().render();
        assert!(r.contains("Guilty by Suspicion"));
        assert!(r.contains("1988"));
        assert!(r.contains("title"));
    }
}
