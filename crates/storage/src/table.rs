//! Tables: the materialization unit of KathDB.
//!
//! Every intermediate result in a KathDB pipeline is materialized as a table
//! so that lineage can reference it (§3) and the explainer can show it (§5).
//!
//! A table is either *resident* (plain `Vec<Row>`, the shape every operator
//! was written against) or *paged* (a [`PagedTable`] of compressed column
//! pages read through the buffer pool). Tables become paged at checkpoint
//! and recovery; mutation materializes them back to resident. The legacy
//! `rows()`/`row()` accessors stay infallible by lazily materializing a
//! paged table's row cache on first use — hot paths (scans, index builds)
//! use the page-aware fallible accessors instead and never pay for that.

use crate::paged::PagedTable;
use crate::pool::BufferPool;
use crate::{Row, Schema, StorageError, Value};
use std::fmt;
use std::sync::{Arc, OnceLock};

#[derive(Debug)]
enum Repr {
    Resident(Vec<Row>),
    Paged {
        pages: Arc<PagedTable>,
        // Lazily materialized rows for the legacy `rows()` accessor.
        cache: OnceLock<Vec<Row>>,
    },
}

impl Clone for Repr {
    fn clone(&self) -> Self {
        match self {
            Repr::Resident(rows) => Repr::Resident(rows.clone()),
            // Cloning a paged table shares the page set; the row cache is
            // per-clone so an un-materialized clone stays lightweight.
            Repr::Paged { pages, .. } => Repr::Paged {
                pages: Arc::clone(pages),
                cache: OnceLock::new(),
            },
        }
    }
}

/// A named, schema-checked collection of rows, resident or page-backed.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    repr: Repr,
}

impl PartialEq for Table {
    /// Logical equality: same name, schema, and row contents — a paged
    /// table equals its resident counterpart.
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.schema == other.schema
            && self.len() == other.len()
            && self.rows() == other.rows()
    }
}

impl Table {
    /// An empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Self {
            name: name.into(),
            schema,
            repr: Repr::Resident(Vec::new()),
        }
    }

    /// Builds a table from rows, validating each against the schema.
    pub fn from_rows(
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Row>,
    ) -> Result<Self, StorageError> {
        let mut t = Table::new(name, schema);
        for row in rows {
            t.push(row)?;
        }
        Ok(t)
    }

    /// Wraps an existing paged representation as a table.
    pub fn from_paged(name: impl Into<String>, pages: Arc<PagedTable>) -> Self {
        Self {
            name: name.into(),
            schema: pages.schema().clone(),
            repr: Repr::Paged {
                pages,
                cache: OnceLock::new(),
            },
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the table (used when an intermediate result is registered
    /// under the `output` name its plan node declared).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row count.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Resident(rows) => rows.len(),
            Repr::Paged { pages, .. } => pages.len(),
        }
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the table is page-backed (vs fully resident).
    pub fn is_paged(&self) -> bool {
        matches!(self.repr, Repr::Paged { .. })
    }

    /// The paged representation, when the table is page-backed.
    pub fn paged(&self) -> Option<&Arc<PagedTable>> {
        match &self.repr {
            Repr::Paged { pages, .. } => Some(pages),
            Repr::Resident(_) => None,
        }
    }

    /// Converts to the paged representation (no-op if already paged).
    pub fn to_paged(
        &self,
        pool: &Arc<BufferPool>,
        page_rows: usize,
    ) -> Result<Table, StorageError> {
        match &self.repr {
            Repr::Paged { .. } => Ok(self.clone()),
            Repr::Resident(rows) => {
                let pages =
                    PagedTable::from_rows(self.schema.clone(), rows, Arc::clone(pool), page_rows)?;
                Ok(Table::from_paged(self.name.clone(), Arc::new(pages)))
            }
        }
    }

    /// All rows. On a paged table this materializes (and caches) every row
    /// on first use — hot paths should prefer [`Table::row_at`],
    /// [`Table::for_each_in_column`], or page-level access via
    /// [`Table::paged`].
    ///
    /// # Panics
    /// Panics if a paged table's backing pages cannot be read (missing or
    /// corrupt page files). Fallible callers should use [`Table::row_at`].
    pub fn rows(&self) -> &[Row] {
        match &self.repr {
            Repr::Resident(rows) => rows,
            Repr::Paged { pages, cache } => cache.get_or_init(|| {
                pages
                    .materialize()
                    .expect("paged table backing pages unreadable")
            }),
        }
    }

    /// A row by position (legacy infallible accessor; see [`Table::rows`]).
    pub fn row(&self, idx: usize) -> Option<&Row> {
        self.rows().get(idx)
    }

    /// A row by position without forcing full materialization; reads
    /// through the buffer pool on a paged table.
    pub fn row_at(&self, idx: usize) -> Result<Option<Row>, StorageError> {
        match &self.repr {
            Repr::Resident(rows) => Ok(rows.get(idx).cloned()),
            Repr::Paged { pages, cache } => match cache.get() {
                Some(rows) => Ok(rows.get(idx).cloned()),
                None => pages.row_at(idx),
            },
        }
    }

    /// Streams `(row position, value)` over one column without
    /// materializing rows; on a paged table this touches one page at a
    /// time, so index builds stay within the pool budget.
    pub fn for_each_in_column<F>(&self, column: &str, mut f: F) -> Result<(), StorageError>
    where
        F: FnMut(usize, &Value) -> Result<(), StorageError>,
    {
        let c = self.schema.resolve(column)?;
        match &self.repr {
            Repr::Resident(rows) => {
                for (pos, row) in rows.iter().enumerate() {
                    f(pos, &row[c])?;
                }
                Ok(())
            }
            Repr::Paged { pages, cache } => match cache.get() {
                Some(rows) => {
                    for (pos, row) in rows.iter().enumerate() {
                        f(pos, &row[c])?;
                    }
                    Ok(())
                }
                None => pages.for_each_in_column(c, f),
            },
        }
    }

    /// Ensures the table is resident, materializing pages if needed.
    fn make_resident(&mut self) -> Result<&mut Vec<Row>, StorageError> {
        if let Repr::Paged { pages, cache } = &mut self.repr {
            let rows = match cache.take() {
                Some(rows) => rows,
                None => pages.materialize()?,
            };
            self.repr = Repr::Resident(rows);
        }
        match &mut self.repr {
            Repr::Resident(rows) => Ok(rows),
            Repr::Paged { .. } => unreachable!("made resident above"),
        }
    }

    /// Appends a validated row. A paged table materializes back to
    /// resident first: mutation works on rows, and the next checkpoint
    /// re-pages the result.
    pub fn push(&mut self, row: Row) -> Result<(), StorageError> {
        self.schema.check_row(&row)?;
        self.make_resident()?.push(row);
        Ok(())
    }

    /// Appends many validated rows.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<(), StorageError> {
        for row in rows {
            self.push(row)?;
        }
        Ok(())
    }

    /// Reads one cell by row index and column name.
    pub fn cell(&self, row: usize, column: &str) -> Result<&Value, StorageError> {
        let c = self.schema.resolve(column)?;
        self.rows()
            .get(row)
            .map(|r| &r[c])
            .ok_or_else(|| StorageError::Eval(format!("row {row} out of bounds")))
    }

    /// All values of one column.
    pub fn column_values(&self, column: &str) -> Result<Vec<&Value>, StorageError> {
        let c = self.schema.resolve(column)?;
        Ok(self.rows().iter().map(|r| &r[c]).collect())
    }

    /// The first `n` rows, as a new table (the "rows sampler" database
    /// utility owned by the plan verifier's tool user, §4).
    pub fn sample(&self, n: usize) -> Table {
        Table {
            name: format!("{}_sample", self.name),
            schema: self.schema.clone(),
            repr: Repr::Resident(self.rows().iter().take(n).cloned().collect()),
        }
    }

    /// Finds the first row index where `column == value`.
    pub fn find(&self, column: &str, value: &Value) -> Result<Option<usize>, StorageError> {
        let c = self.schema.resolve(column)?;
        Ok(self.rows().iter().position(|r| &r[c] == value))
    }

    /// Renders the table as an aligned ASCII grid, the way the paper's
    /// figures print result tables (Fig. 6).
    pub fn render(&self) -> String {
        let headers: Vec<String> = self.schema.names().iter().map(|s| s.to_string()).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows()
            .iter()
            .map(|r| r.iter().map(Value::render).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {:w$} |", h, w = w));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rendered {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {:w$} |", cell, w = w));
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{} rows]", self.name, self.schema, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataType;

    fn movies() -> Table {
        let schema = Schema::of(&[("title", DataType::Str), ("year", DataType::Int)]);
        Table::from_rows(
            "movies",
            schema,
            vec![
                vec!["Guilty by Suspicion".into(), Value::Int(1991)],
                vec!["Clean and Sober".into(), Value::Int(1988)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn push_validates_schema() {
        let mut t = movies();
        assert!(t.push(vec![Value::Int(5), Value::Int(2000)]).is_err());
        assert!(t.push(vec!["New".into(), Value::Int(2000)]).is_ok());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn cell_and_find() {
        let t = movies();
        assert_eq!(
            t.cell(0, "title").unwrap().as_str(),
            Some("Guilty by Suspicion")
        );
        assert_eq!(t.find("year", &Value::Int(1988)).unwrap(), Some(1));
        assert_eq!(t.find("year", &Value::Int(1900)).unwrap(), None);
        assert!(t.cell(0, "nope").is_err());
    }

    #[test]
    fn sample_truncates() {
        let t = movies();
        assert_eq!(t.sample(1).len(), 1);
        assert_eq!(t.sample(10).len(), 2);
    }

    #[test]
    fn render_contains_all_cells() {
        let r = movies().render();
        assert!(r.contains("Guilty by Suspicion"));
        assert!(r.contains("1988"));
        assert!(r.contains("title"));
    }

    #[test]
    fn paged_table_is_logically_equal() {
        let t = movies();
        let pool = Arc::new(BufferPool::with_budget(8));
        let paged = t.to_paged(&pool, 1).unwrap();
        assert!(paged.is_paged());
        assert!(!t.is_paged());
        assert_eq!(paged, t);
        assert_eq!(t, paged);
        assert_eq!(paged.len(), 2);
        assert_eq!(paged.rows(), t.rows());
        assert_eq!(paged.row_at(1).unwrap().unwrap(), t.rows()[1]);
        assert_eq!(paged.row_at(2).unwrap(), None);
        assert_eq!(paged.render(), t.render());
    }

    #[test]
    fn push_on_paged_materializes() {
        let t = movies();
        let pool = Arc::new(BufferPool::with_budget(8));
        let mut paged = t.to_paged(&pool, 1).unwrap();
        paged.push(vec!["New".into(), Value::Int(2000)]).unwrap();
        assert!(!paged.is_paged());
        assert_eq!(paged.len(), 3);
        assert_eq!(paged.rows()[..2], t.rows()[..]);
    }

    #[test]
    fn for_each_in_column_streams_both_reprs() {
        let t = movies();
        let pool = Arc::new(BufferPool::with_budget(8));
        let paged = t.to_paged(&pool, 1).unwrap();
        for table in [&t, &paged] {
            let mut seen = Vec::new();
            table
                .for_each_in_column("year", |pos, v| {
                    seen.push((pos, v.clone()));
                    Ok(())
                })
                .unwrap();
            assert_eq!(
                seen,
                vec![(0, Value::Int(1991)), (1, Value::Int(1988))],
                "repr paged={}",
                table.is_paged()
            );
        }
        assert!(t.for_each_in_column("nope", |_, _| Ok(())).is_err());
    }
}
