//! Error types for the relational substrate.

use crate::DataType;
use std::fmt;

/// Errors raised by storage, expression evaluation, and operators.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A schema declared the same column twice.
    DuplicateColumn(String),
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// Row arity differs from the schema.
    ArityMismatch {
        /// Schema arity.
        expected: usize,
        /// Row length.
        got: usize,
    },
    /// A value's type does not match its column.
    TypeMismatch {
        /// Offending column.
        column: String,
        /// Declared type.
        expected: DataType,
        /// Actual value type.
        got: DataType,
    },
    /// Expression evaluation failed (type error, div by zero, bad arg count).
    Eval(String),
    /// Corrupt or truncated persisted data.
    Corrupt(String),
    /// A string or blob exceeds the 4 GiB (`u32::MAX` bytes) limit of the
    /// binary formats; encoding refuses instead of silently truncating.
    TooLarge {
        /// What was being encoded ("string", "blob", "rows", …).
        what: String,
        /// The offending length (bytes or elements).
        len: u64,
    },
    /// Underlying I/O failure (message only, to keep the error `Clone`).
    Io(String),
    /// The query was cancelled: its deadline passed or its cancel token
    /// fired. Partial results are dropped; catalog state is untouched.
    Cancelled(String),
    /// The query exceeded its row or byte budget.
    Budget(String),
    /// A torn WAL tail could not be truncated at open. The segment is left
    /// untouched for forensics and must not be appended to — appending
    /// after the poisoned tail would bury a torn frame inside valid data.
    TornTail(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::DuplicateColumn(c) => write!(f, "duplicate column '{c}'"),
            StorageError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            StorageError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            StorageError::TableExists(t) => write!(f, "table '{t}' already exists"),
            StorageError::ArityMismatch { expected, got } => {
                write!(f, "row arity {got} does not match schema arity {expected}")
            }
            StorageError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(f, "column '{column}' expects {expected}, got {got}"),
            StorageError::Eval(m) => write!(f, "expression error: {m}"),
            StorageError::Corrupt(m) => write!(f, "corrupt table data: {m}"),
            StorageError::TooLarge { what, len } => {
                write!(f, "cannot encode {what} of length {len}: exceeds u32::MAX")
            }
            StorageError::Io(m) => write!(f, "io error: {m}"),
            StorageError::Cancelled(m) => write!(f, "query cancelled: {m}"),
            StorageError::Budget(m) => write!(f, "query budget exceeded: {m}"),
            StorageError::TornTail(m) => write!(f, "torn wal tail not repaired: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}
