//! Fixed-size compressed column pages with embedded zone maps.
//!
//! A *page* is the unit of the out-of-core storage layer: one column of one
//! fixed-size row group, compressed with an encoding chosen from the actual
//! values — frame-of-reference bit-packed integers, dictionary or run-length
//! strings, packed booleans, raw `f64` floats — plus a packed null bitmap
//! and a CRC32 trailer. Every page carries a [`ZoneMap`] (min/max/null
//! count) so scans can skip whole pages against a predicate *before* paying
//! for decompression. Decoding reconstructs the exact [`ColumnVector`] the
//! resident path would have built from the same values, which is what keeps
//! paged execution byte-identical to fully-resident execution.

use crate::persist::{encodable_len, get_str, get_value, put_str, put_value};
use crate::wal::crc32;
use crate::{BinOp, ColumnVector, StorageError, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::cmp::Ordering;

/// Default rows per page (row-group height). Small enough that one decoded
/// page of any column stays cache-friendly, large enough to amortize the
/// per-page header, CRC, and buffer-pool bookkeeping.
pub const DEFAULT_PAGE_ROWS: usize = 4096;

const PAGE_MAGIC: &[u8; 4] = b"KPAG";
const PAGE_VERSION: u8 = 1;

const ENC_RAW: u8 = 0;
const ENC_INT_FOR: u8 = 1;
const ENC_FLOAT: u8 = 2;
const ENC_STR_DICT: u8 = 3;
const ENC_STR_RLE: u8 = 4;
const ENC_BOOL_BITMAP: u8 = 5;

/// Per-page summary statistics embedded at encode time: row/null counts and
/// the min/max of the non-NULL values when they share one comparable type.
/// Scans consult zone maps to prove "no row of this page can satisfy this
/// conjunct" and skip the page without decompressing it.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    /// Rows in the page.
    pub rows: u32,
    /// NULL slots in the page.
    pub null_count: u32,
    /// Minimum non-NULL value, when all non-NULL values are mutually
    /// comparable under [`Value::sql_cmp`]; `None` for mixed-type pages.
    pub min: Option<Value>,
    /// Maximum non-NULL value under the same conditions.
    pub max: Option<Value>,
}

impl ZoneMap {
    /// Computes the zone map of one page of values.
    pub fn compute(values: &[Value]) -> Self {
        let mut null_count = 0u32;
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        let mut bounded = true;
        for v in values {
            if v.is_null() {
                null_count += 1;
                continue;
            }
            if !bounded {
                continue;
            }
            match (&min, &max) {
                (None, None) => {
                    min = Some(v.clone());
                    max = Some(v.clone());
                }
                (Some(lo), Some(hi)) => {
                    match v.sql_cmp(lo) {
                        Some(Ordering::Less) => min = Some(v.clone()),
                        Some(_) => {}
                        None => {
                            bounded = false;
                            continue;
                        }
                    }
                    match v.sql_cmp(hi) {
                        Some(Ordering::Greater) => max = Some(v.clone()),
                        Some(_) => {}
                        None => bounded = false,
                    }
                }
                _ => unreachable!("min and max are set together"),
            }
        }
        if !bounded {
            min = None;
            max = None;
        }
        Self {
            rows: values.len() as u32,
            null_count,
            min,
            max,
        }
    }

    /// Whether any row of the page *may* satisfy `column <op> literal`.
    /// Returns `false` only when the zone map proves no row can: skipping
    /// is then safe because a WHERE conjunct that is false or NULL drops
    /// the row either way. Conservative on mixed-type pages and
    /// incomparable literals (always `true`).
    pub fn may_match(&self, op: BinOp, lit: &Value) -> bool {
        if self.null_count >= self.rows {
            // All-NULL page: every comparison is unknown, no row passes.
            return false;
        }
        let (Some(min), Some(max)) = (&self.min, &self.max) else {
            return true; // Mixed-type page: no provable bound.
        };
        let (Some(lo), Some(hi)) = (lit.sql_cmp(min), lit.sql_cmp(max)) else {
            return true; // Incomparable literal: let the filter decide.
        };
        match op {
            BinOp::Eq => lo != Ordering::Less && hi != Ordering::Greater,
            // Skippable only when every value equals the literal.
            BinOp::Ne => !(lo == Ordering::Equal && hi == Ordering::Equal),
            BinOp::Lt => lo == Ordering::Greater, // some value < lit ⇔ min < lit
            BinOp::Le => lo != Ordering::Less,
            BinOp::Gt => hi == Ordering::Less, // some value > lit ⇔ max > lit
            BinOp::Ge => hi != Ordering::Greater,
            _ => true,
        }
    }

    /// Serializes the zone map (for checkpoint metadata).
    pub(crate) fn encode(&self, buf: &mut BytesMut) -> Result<(), StorageError> {
        buf.put_u32(self.rows);
        buf.put_u32(self.null_count);
        match (&self.min, &self.max) {
            (Some(min), Some(max)) => {
                buf.put_u8(1);
                put_value(buf, min)?;
                put_value(buf, max)?;
            }
            _ => buf.put_u8(0),
        }
        Ok(())
    }

    /// Deserializes a zone map written by [`ZoneMap::encode`].
    pub(crate) fn decode(data: &mut &[u8]) -> Result<Self, StorageError> {
        let corrupt = |m: &str| StorageError::Corrupt(m.to_string());
        if data.remaining() < 9 {
            return Err(corrupt("truncated zone map"));
        }
        let rows = data.get_u32();
        let null_count = data.get_u32();
        let (min, max) = if data.get_u8() != 0 {
            (Some(get_value(data)?), Some(get_value(data)?))
        } else {
            (None, None)
        };
        Ok(Self {
            rows,
            null_count,
            min,
            max,
        })
    }
}

/// Encodes one page of column values, returning the framed bytes (magic,
/// version, row count, encoding, null bitmap, payload, CRC32 trailer) and
/// the page's zone map. The encoding is chosen per page from the values:
/// uniform Int pages bit-pack frame-of-reference deltas, Str pages take the
/// smaller of dictionary / run-length / raw, Bool pages pack to bits,
/// Float pages store raw `f64`s, and everything else (mixed types, blobs,
/// all-NULL) falls back to tagged raw values.
pub fn encode_page(values: &[Value]) -> Result<(Bytes, ZoneMap), StorageError> {
    let zone = ZoneMap::compute(values);
    let rows = encodable_len("page rows", values.len())?;
    let (enc, payload) = choose_payload(values)?;
    let mut buf = BytesMut::with_capacity(payload.len() + 32 + values.len() / 8);
    buf.put_slice(PAGE_MAGIC);
    buf.put_u8(PAGE_VERSION);
    buf.put_u32(rows);
    buf.put_u8(enc);
    buf.put_u32(zone.null_count);
    if zone.null_count > 0 {
        for word in null_words(values) {
            buf.put_u64(word);
        }
    }
    buf.put_slice(&payload);
    let checksum = crc32(&buf);
    buf.put_u32(checksum);
    Ok((buf.freeze(), zone))
}

/// Decodes a page back to the exact [`ColumnVector`] the resident path
/// would build from the original values. The CRC32 trailer is verified
/// before any payload byte is interpreted.
pub fn decode_page(data: &[u8]) -> Result<ColumnVector, StorageError> {
    let corrupt = |m: &str| StorageError::Corrupt(m.to_string());
    if data.len() < 18 || data[..4] != *PAGE_MAGIC {
        return Err(corrupt("bad page magic"));
    }
    if data[4] != PAGE_VERSION {
        return Err(corrupt("unsupported page version"));
    }
    let (payload, trailer) = data.split_at(data.len() - 4);
    let stored = u32::from_be_bytes(trailer.try_into().expect("4-byte trailer"));
    if crc32(payload) != stored {
        return Err(corrupt("page checksum mismatch"));
    }
    let mut data = &payload[5..];
    let rows = data.get_u32() as usize;
    if rows > 1 << 28 {
        return Err(corrupt("implausible page row count"));
    }
    let enc = data.get_u8();
    if data.remaining() < 4 {
        return Err(corrupt("truncated null count"));
    }
    let null_count = data.get_u32() as usize;
    if null_count > rows {
        return Err(corrupt("null count exceeds row count"));
    }
    let mut nulls = vec![false; rows];
    if null_count > 0 {
        let words = rows.div_ceil(64);
        if data.remaining() < words * 8 {
            return Err(corrupt("truncated null bitmap"));
        }
        for w in 0..words {
            let word = data.get_u64();
            for b in 0..64 {
                let i = w * 64 + b;
                if i < rows {
                    nulls[i] = word & (1u64 << b) != 0;
                }
            }
        }
    }
    let values = decode_payload(enc, rows, &nulls, &mut data)?;
    if data.has_remaining() {
        return Err(corrupt("trailing bytes after page payload"));
    }
    Ok(ColumnVector::from_values(values))
}

/// The human-readable encoding name of a framed page (for benchmarks and
/// diagnostics). Does not verify the CRC.
pub fn page_encoding_name(data: &[u8]) -> Option<&'static str> {
    if data.len() < 10 || data[..4] != *PAGE_MAGIC {
        return None;
    }
    Some(match data[9] {
        ENC_RAW => "raw",
        ENC_INT_FOR => "int-for",
        ENC_FLOAT => "float64",
        ENC_STR_DICT => "str-dict",
        ENC_STR_RLE => "str-rle",
        ENC_BOOL_BITMAP => "bool-bitmap",
        _ => return None,
    })
}

fn null_words(values: &[Value]) -> Vec<u64> {
    let mut words = vec![0u64; values.len().div_ceil(64)];
    for (i, v) in values.iter().enumerate() {
        if v.is_null() {
            words[i / 64] |= 1u64 << (i % 64);
        }
    }
    words
}

/// The uniform non-NULL payload type of a page, if any.
fn uniform_type(values: &[Value]) -> Option<crate::DataType> {
    let mut tag = None;
    for v in values {
        if v.is_null() {
            continue;
        }
        let t = v.data_type();
        match tag {
            None => tag = Some(t),
            Some(prev) if prev == t => {}
            Some(_) => return None,
        }
    }
    tag
}

fn choose_payload(values: &[Value]) -> Result<(u8, Vec<u8>), StorageError> {
    use crate::DataType;
    match uniform_type(values) {
        Some(DataType::Int) => Ok((ENC_INT_FOR, encode_int_for(values))),
        Some(DataType::Float) => Ok((ENC_FLOAT, encode_floats(values))),
        Some(DataType::Bool) => Ok((ENC_BOOL_BITMAP, encode_bools(values))),
        Some(DataType::Str) => {
            let dict = encode_str_dict(values)?;
            let rle = encode_str_rle(values)?;
            let raw = encode_raw(values)?;
            let mut best = (ENC_RAW, raw);
            if dict.as_ref().is_some_and(|d| d.len() < best.1.len()) {
                best = (ENC_STR_DICT, dict.expect("checked above"));
            }
            if rle.len() < best.1.len() {
                best = (ENC_STR_RLE, rle);
            }
            Ok(best)
        }
        // Mixed types, blobs, Any, or all-NULL pages: tagged raw values.
        _ => Ok((ENC_RAW, encode_raw(values)?)),
    }
}

fn decode_payload(
    enc: u8,
    rows: usize,
    nulls: &[bool],
    data: &mut &[u8],
) -> Result<Vec<Value>, StorageError> {
    match enc {
        ENC_RAW => decode_raw(rows, data),
        ENC_INT_FOR => decode_int_for(rows, nulls, data),
        ENC_FLOAT => decode_floats(rows, nulls, data),
        ENC_BOOL_BITMAP => decode_bools(rows, nulls, data),
        ENC_STR_DICT => decode_str_dict(rows, nulls, data),
        ENC_STR_RLE => decode_str_rle(rows, data),
        t => Err(StorageError::Corrupt(format!("unknown page encoding {t}"))),
    }
}

// ---- bit packing ----------------------------------------------------------

fn pack_bits(vals: &[u64], width: u32) -> Vec<u8> {
    if width == 0 {
        return Vec::new();
    }
    let bits = vals.len() * width as usize;
    let mut out = vec![0u8; bits.div_ceil(8)];
    let mut pos = 0usize;
    for &v in vals {
        for b in 0..width {
            if (v >> b) & 1 == 1 {
                out[pos / 8] |= 1 << (pos % 8);
            }
            pos += 1;
        }
    }
    out
}

fn unpack_bits(data: &mut &[u8], width: u32, count: usize) -> Result<Vec<u64>, StorageError> {
    if width == 0 {
        return Ok(vec![0u64; count]);
    }
    let bits = count
        .checked_mul(width as usize)
        .ok_or_else(|| StorageError::Corrupt("bit-pack overflow".into()))?;
    let bytes = bits.div_ceil(8);
    if data.remaining() < bytes {
        return Err(StorageError::Corrupt("truncated bit-packed payload".into()));
    }
    let packed = &data[..bytes];
    let mut out = Vec::with_capacity(count);
    let mut pos = 0usize;
    for _ in 0..count {
        let mut v = 0u64;
        for b in 0..width {
            if packed[pos / 8] & (1 << (pos % 8)) != 0 {
                v |= 1u64 << b;
            }
            pos += 1;
        }
        out.push(v);
    }
    data.advance(bytes);
    Ok(out)
}

// ---- per-encoding payloads ------------------------------------------------

fn encode_raw(values: &[Value]) -> Result<Vec<u8>, StorageError> {
    let mut buf = BytesMut::new();
    for v in values {
        put_value(&mut buf, v)?;
    }
    Ok(buf.to_vec())
}

fn decode_raw(rows: usize, data: &mut &[u8]) -> Result<Vec<Value>, StorageError> {
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        out.push(get_value(data)?);
    }
    Ok(out)
}

/// Frame-of-reference: `min` plus bit-packed unsigned deltas. NULL slots
/// pack delta 0.
fn encode_int_for(values: &[Value]) -> Vec<u8> {
    let min = values
        .iter()
        .filter_map(Value::as_int)
        .min()
        .unwrap_or_default();
    let deltas: Vec<u64> = values
        .iter()
        .map(|v| match v.as_int() {
            Some(i) => (i as u64).wrapping_sub(min as u64),
            None => 0,
        })
        .collect();
    let max_delta = deltas.iter().copied().max().unwrap_or(0);
    let width = 64 - max_delta.leading_zeros();
    let mut buf = BytesMut::with_capacity(9 + deltas.len() * width as usize / 8);
    buf.put_i64(min);
    buf.put_u8(width as u8);
    buf.put_slice(&pack_bits(&deltas, width));
    buf.to_vec()
}

fn decode_int_for(
    rows: usize,
    nulls: &[bool],
    data: &mut &[u8],
) -> Result<Vec<Value>, StorageError> {
    if data.remaining() < 9 {
        return Err(StorageError::Corrupt("truncated int-for header".into()));
    }
    let min = data.get_i64();
    let width = data.get_u8() as u32;
    if width > 64 {
        return Err(StorageError::Corrupt("implausible int-for width".into()));
    }
    let deltas = unpack_bits(data, width, rows)?;
    Ok(deltas
        .iter()
        .zip(nulls)
        .map(|(d, is_null)| {
            if *is_null {
                Value::Null
            } else {
                Value::Int((min as u64).wrapping_add(*d) as i64)
            }
        })
        .collect())
}

fn encode_floats(values: &[Value]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(values.len() * 8);
    for v in values {
        buf.put_f64(v.as_f64().unwrap_or_default());
    }
    buf.to_vec()
}

fn decode_floats(
    rows: usize,
    nulls: &[bool],
    data: &mut &[u8],
) -> Result<Vec<Value>, StorageError> {
    if data.remaining() < rows * 8 {
        return Err(StorageError::Corrupt("truncated float payload".into()));
    }
    Ok((0..rows)
        .map(|i| {
            let f = data.get_f64();
            if nulls[i] {
                Value::Null
            } else {
                Value::Float(f)
            }
        })
        .collect())
}

fn encode_bools(values: &[Value]) -> Vec<u8> {
    let bits: Vec<u64> = values
        .iter()
        .map(|v| v.as_bool().unwrap_or_default() as u64)
        .collect();
    pack_bits(&bits, 1)
}

fn decode_bools(rows: usize, nulls: &[bool], data: &mut &[u8]) -> Result<Vec<Value>, StorageError> {
    let bits = unpack_bits(data, 1, rows)?;
    Ok(bits
        .iter()
        .zip(nulls)
        .map(|(b, is_null)| {
            if *is_null {
                Value::Null
            } else {
                Value::Bool(*b != 0)
            }
        })
        .collect())
}

/// Dictionary encoding: sorted distinct strings plus bit-packed codes.
/// `None` when the dictionary would not be usable (no non-NULL strings).
fn encode_str_dict(values: &[Value]) -> Result<Option<Vec<u8>>, StorageError> {
    use std::collections::BTreeSet;
    let dict: BTreeSet<&str> = values
        .iter()
        .filter_map(|v| match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    if dict.is_empty() {
        return Ok(None);
    }
    // BTreeSet iteration is sorted: codes are assigned in sorted order so
    // the encoding is deterministic regardless of first-occurrence order.
    let sorted: Vec<&str> = dict.into_iter().collect();
    let codes_by_str: std::collections::HashMap<&str, u64> = sorted
        .iter()
        .enumerate()
        .map(|(i, s)| (*s, i as u64))
        .collect();
    let codes: Vec<u64> = values
        .iter()
        .map(|v| match v {
            Value::Str(s) => codes_by_str[s.as_str()],
            _ => 0,
        })
        .collect();
    let width = 64 - (sorted.len() as u64 - 1).leading_zeros();
    let mut buf = BytesMut::new();
    buf.put_u32(encodable_len("dictionary", sorted.len())?);
    for s in &sorted {
        put_str(&mut buf, s)?;
    }
    buf.put_u8(width as u8);
    buf.put_slice(&pack_bits(&codes, width));
    Ok(Some(buf.to_vec()))
}

fn decode_str_dict(
    rows: usize,
    nulls: &[bool],
    data: &mut &[u8],
) -> Result<Vec<Value>, StorageError> {
    let corrupt = |m: &str| StorageError::Corrupt(m.to_string());
    if data.remaining() < 4 {
        return Err(corrupt("truncated dictionary length"));
    }
    let n = data.get_u32() as usize;
    if n == 0 || n > rows.max(1) {
        return Err(corrupt("implausible dictionary size"));
    }
    let mut dict = Vec::with_capacity(n);
    for _ in 0..n {
        dict.push(get_str(data)?);
    }
    if !data.has_remaining() {
        return Err(corrupt("truncated dictionary code width"));
    }
    let width = data.get_u8() as u32;
    if width > 64 {
        return Err(corrupt("implausible dictionary code width"));
    }
    let codes = unpack_bits(data, width, rows)?;
    codes
        .iter()
        .zip(nulls)
        .map(|(c, is_null)| {
            if *is_null {
                return Ok(Value::Null);
            }
            dict.get(*c as usize)
                .map(|s| Value::Str(s.clone()))
                .ok_or_else(|| corrupt("dictionary code out of range"))
        })
        .collect()
}

/// Run-length encoding over (nullness, string) runs.
fn encode_str_rle(values: &[Value]) -> Result<Vec<u8>, StorageError> {
    let mut runs: Vec<(u32, Option<&str>)> = Vec::new();
    for v in values {
        let key = match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        };
        match runs.last_mut() {
            Some((len, prev)) if *prev == key && *len < u32::MAX => *len += 1,
            _ => runs.push((1, key)),
        }
    }
    let mut buf = BytesMut::new();
    buf.put_u32(encodable_len("rle runs", runs.len())?);
    for (len, key) in &runs {
        buf.put_u32(*len);
        match key {
            Some(s) => {
                buf.put_u8(0);
                put_str(&mut buf, s)?;
            }
            None => buf.put_u8(1),
        }
    }
    Ok(buf.to_vec())
}

fn decode_str_rle(rows: usize, data: &mut &[u8]) -> Result<Vec<Value>, StorageError> {
    let corrupt = |m: &str| StorageError::Corrupt(m.to_string());
    if data.remaining() < 4 {
        return Err(corrupt("truncated rle run count"));
    }
    let runs = data.get_u32() as usize;
    if runs > rows {
        return Err(corrupt("implausible rle run count"));
    }
    let mut out = Vec::with_capacity(rows);
    for _ in 0..runs {
        if data.remaining() < 5 {
            return Err(corrupt("truncated rle run"));
        }
        let len = data.get_u32() as usize;
        let is_null = data.get_u8() != 0;
        if out.len() + len > rows {
            return Err(corrupt("rle runs exceed row count"));
        }
        if is_null {
            out.extend(std::iter::repeat_n(Value::Null, len));
        } else {
            let s = get_str(data)?;
            out.extend(std::iter::repeat_n(Value::Str(s), len));
        }
    }
    if out.len() != rows {
        return Err(corrupt("rle runs do not cover the page"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: Vec<Value>) {
        let (bytes, zone) = encode_page(&values).unwrap();
        assert_eq!(zone.rows as usize, values.len());
        let back = decode_page(&bytes).unwrap();
        assert_eq!(back.to_values(), values);
        // The decoded vector must equal the one the resident path builds.
        assert_eq!(back, ColumnVector::from_values(values));
    }

    #[test]
    fn int_pages_round_trip_and_bit_pack() {
        round_trip((0..1000i64).map(Value::Int).collect());
        round_trip(vec![Value::Int(i64::MIN), Value::Int(i64::MAX)]);
        round_trip(vec![Value::Int(7); 100]);
        round_trip(vec![Value::Int(5), Value::Null, Value::Int(-5)]);
        // Narrow-range ints compress well below raw (9 bytes/slot).
        let vals: Vec<Value> = (0..1024i64)
            .map(|i| Value::Int(1_000_000 + i % 16))
            .collect();
        let (bytes, _) = encode_page(&vals).unwrap();
        assert!(bytes.len() < vals.len() * 2, "{} bytes", bytes.len());
        assert_eq!(page_encoding_name(&bytes), Some("int-for"));
    }

    #[test]
    fn string_pages_pick_the_smaller_encoding() {
        // Low cardinality: dictionary wins.
        let dicty: Vec<Value> = (0..512)
            .map(|i| Value::Str(format!("tag{}", i % 4)))
            .collect();
        let (bytes, _) = encode_page(&dicty).unwrap();
        assert_eq!(page_encoding_name(&bytes), Some("str-dict"));
        assert!(bytes.len() < 512);
        round_trip(dicty);
        // Long runs: RLE wins.
        let runny: Vec<Value> = (0..512)
            .map(|i| Value::Str(format!("run{}", i / 256)))
            .collect();
        let (bytes, _) = encode_page(&runny).unwrap();
        assert_eq!(page_encoding_name(&bytes), Some("str-rle"));
        round_trip(runny);
        // High cardinality strings still round-trip.
        round_trip(
            (0..100)
                .map(|i| Value::Str(format!("unique-{i}")))
                .collect(),
        );
    }

    #[test]
    fn float_bool_mixed_and_null_pages() {
        round_trip(vec![
            Value::Float(0.5),
            Value::Null,
            Value::Float(f64::NAN.min(3.0)),
        ]);
        round_trip(vec![Value::Bool(true), Value::Bool(false), Value::Null]);
        round_trip(vec![Value::Int(1), Value::Str("x".into())]); // mixed -> raw
        round_trip(vec![Value::Null; 64]); // all-NULL
        round_trip(vec![]); // empty page
        round_trip(vec![Value::Blob(vec![1, 2, 3]), Value::Null]);
    }

    #[test]
    fn zone_maps_bound_and_prune() {
        let z = ZoneMap::compute(&[Value::Int(10), Value::Int(20), Value::Null]);
        assert_eq!(z.min, Some(Value::Int(10)));
        assert_eq!(z.max, Some(Value::Int(20)));
        assert_eq!(z.null_count, 1);
        assert!(z.may_match(BinOp::Eq, &Value::Int(15)));
        assert!(!z.may_match(BinOp::Eq, &Value::Int(5)));
        assert!(!z.may_match(BinOp::Eq, &Value::Int(25)));
        assert!(z.may_match(BinOp::Lt, &Value::Int(11)));
        assert!(!z.may_match(BinOp::Lt, &Value::Int(10)));
        assert!(z.may_match(BinOp::Le, &Value::Int(10)));
        assert!(!z.may_match(BinOp::Le, &Value::Int(9)));
        assert!(z.may_match(BinOp::Gt, &Value::Int(19)));
        assert!(!z.may_match(BinOp::Gt, &Value::Int(20)));
        assert!(z.may_match(BinOp::Ge, &Value::Int(20)));
        assert!(!z.may_match(BinOp::Ge, &Value::Int(21)));
        assert!(z.may_match(BinOp::Ne, &Value::Int(10)));
        // Cross-numeric comparison works (Int zone, Float literal).
        assert!(!z.may_match(BinOp::Eq, &Value::Float(5.0)));
        assert!(z.may_match(BinOp::Eq, &Value::Float(10.0)));
        // Incomparable literal: conservative keep.
        assert!(z.may_match(BinOp::Eq, &Value::Str("x".into())));
    }

    #[test]
    fn degenerate_zone_maps() {
        // All-NULL page can never satisfy a comparison conjunct.
        let z = ZoneMap::compute(&[Value::Null, Value::Null]);
        assert!(!z.may_match(BinOp::Eq, &Value::Int(1)));
        assert!(!z.may_match(BinOp::Ne, &Value::Int(1)));
        // Single-value page: Ne prunes when the literal equals it…
        let z = ZoneMap::compute(&[Value::Int(7), Value::Int(7)]);
        assert!(!z.may_match(BinOp::Ne, &Value::Int(7)));
        assert!(z.may_match(BinOp::Ne, &Value::Int(8)));
        // …unless NULLs are present (they fail the filter anyway: still safe).
        let z = ZoneMap::compute(&[Value::Int(7), Value::Null]);
        assert!(!z.may_match(BinOp::Ne, &Value::Int(7)));
        // Mixed-type page is unbounded: everything may match.
        let z = ZoneMap::compute(&[Value::Int(1), Value::Str("a".into())]);
        assert!(z.may_match(BinOp::Eq, &Value::Int(999)));
        // Empty page has no matching rows.
        let z = ZoneMap::compute(&[]);
        assert!(!z.may_match(BinOp::Eq, &Value::Int(1)));
    }

    #[test]
    fn zone_map_encode_decode() {
        for z in [
            ZoneMap::compute(&[Value::Int(1), Value::Int(5), Value::Null]),
            ZoneMap::compute(&[Value::Str("a".into()), Value::Str("z".into())]),
            ZoneMap::compute(&[Value::Null]),
            ZoneMap::compute(&[Value::Int(1), Value::Str("x".into())]),
        ] {
            let mut buf = BytesMut::new();
            z.encode(&mut buf).unwrap();
            let mut data = &buf[..];
            assert_eq!(ZoneMap::decode(&mut data).unwrap(), z);
            assert!(data.is_empty());
        }
    }

    #[test]
    fn corruption_is_detected() {
        let (bytes, _) = encode_page(&(0..100i64).map(Value::Int).collect::<Vec<_>>()).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.to_vec();
            bad[i] ^= 1 << (i % 8);
            assert!(decode_page(&bad).is_err(), "bit flip at {i} undetected");
        }
        for cut in 0..bytes.len() {
            assert!(decode_page(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
