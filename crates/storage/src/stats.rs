//! Table statistics for cost-based optimization.
//!
//! The paper's optimizer "attaches cost and accuracy statistics to individual
//! FAO implementations and compares alternatives … under a unified cost
//! model" (§1). Relational costs bottom out in these per-table statistics.

use crate::{StorageError, Table, Value};
use std::collections::HashSet;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Number of distinct non-NULL values.
    pub ndv: usize,
    /// Number of NULLs.
    pub null_count: usize,
    /// Minimum non-NULL value.
    pub min: Option<Value>,
    /// Maximum non-NULL value.
    pub max: Option<Value>,
}

impl ColumnStats {
    /// Estimated selectivity of an equality predicate on this column
    /// (classical `1/ndv` with a floor to avoid zero estimates).
    pub fn eq_selectivity(&self) -> f64 {
        if self.ndv == 0 {
            0.0
        } else {
            (1.0 / self.ndv as f64).max(1e-6)
        }
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Row count.
    pub rows: usize,
    /// Per-column statistics, aligned with the schema.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Collects exact statistics by scanning the table once.
    pub fn collect(table: &Table) -> Self {
        let arity = table.schema().arity();
        let mut distinct: Vec<HashSet<Value>> = vec![HashSet::new(); arity];
        let mut nulls = vec![0usize; arity];
        let mut mins: Vec<Option<Value>> = vec![None; arity];
        let mut maxs: Vec<Option<Value>> = vec![None; arity];
        for row in table.rows() {
            for (i, v) in row.iter().enumerate() {
                if v.is_null() {
                    nulls[i] += 1;
                    continue;
                }
                distinct[i].insert(v.clone());
                if mins[i].as_ref().is_none_or(|m| v.total_cmp(m).is_lt()) {
                    mins[i] = Some(v.clone());
                }
                if maxs[i].as_ref().is_none_or(|m| v.total_cmp(m).is_gt()) {
                    maxs[i] = Some(v.clone());
                }
            }
        }
        let columns = table
            .schema()
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| ColumnStats {
                name: c.name.clone(),
                ndv: distinct[i].len(),
                null_count: nulls[i],
                min: mins[i].clone(),
                max: maxs[i].clone(),
            })
            .collect();
        Self {
            rows: table.len(),
            columns,
        }
    }

    /// Stats for a named column.
    pub fn column(&self, name: &str) -> Result<&ColumnStats, StorageError> {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| StorageError::UnknownColumn(name.to_string()))
    }

    /// Estimated output cardinality of an equi-join with `other` on the given
    /// columns: `|L|·|R| / max(ndv_L, ndv_R)` (System-R style).
    pub fn join_cardinality(
        &self,
        col: &str,
        other: &TableStats,
        other_col: &str,
    ) -> Result<f64, StorageError> {
        let l = self.column(col)?;
        let r = other.column(other_col)?;
        let denom = l.ndv.max(r.ndv).max(1) as f64;
        Ok(self.rows as f64 * other.rows as f64 / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, Schema};

    fn table() -> Table {
        let schema = Schema::of(&[("id", DataType::Int), ("year", DataType::Int)]);
        Table::from_rows(
            "t",
            schema,
            vec![
                vec![1i64.into(), 1991i64.into()],
                vec![2i64.into(), 1988i64.into()],
                vec![3i64.into(), Value::Null],
                vec![4i64.into(), 1991i64.into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn collect_counts_ndv_nulls_min_max() {
        let s = TableStats::collect(&table());
        assert_eq!(s.rows, 4);
        let year = s.column("year").unwrap();
        assert_eq!(year.ndv, 2);
        assert_eq!(year.null_count, 1);
        assert_eq!(year.min, Some(Value::Int(1988)));
        assert_eq!(year.max, Some(Value::Int(1991)));
    }

    #[test]
    fn eq_selectivity() {
        let s = TableStats::collect(&table());
        let id = s.column("id").unwrap();
        assert!((id.eq_selectivity() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn join_cardinality_estimate() {
        let s = TableStats::collect(&table());
        // Self-join on id: 4*4/4 = 4.
        let est = s.join_cardinality("id", &s, "id").unwrap();
        assert!((est - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_table_stats() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let t = Table::new("e", schema);
        let s = TableStats::collect(&t);
        assert_eq!(s.rows, 0);
        assert_eq!(s.column("x").unwrap().ndv, 0);
        assert_eq!(s.column("x").unwrap().eq_selectivity(), 0.0);
    }
}
