//! Typed values and data types for KathDB's relational layer.
//!
//! Everything that flows through the relational semantic layer — base table
//! cells, scene-graph attributes, text-graph spans, lineage ids, model
//! scores — is a [`Value`]. A small closed set of types keeps the layer
//! "compact, tractable, and extensible to future modalities" (§3).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The data type of a column or value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (ids, years, counts).
    Int,
    /// 64-bit float (scores, coordinates).
    Float,
    /// UTF-8 text.
    Str,
    /// Boolean flag.
    Bool,
    /// Raw bytes (e.g. frame pixels in the `Frames` view).
    Blob,
    /// Any type; used for columns whose type is decided by a generated
    /// function body (the logical plan only carries signatures).
    Any,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
            DataType::Bool => "BOOL",
            DataType::Blob => "BLOB",
            DataType::Any => "ANY",
        };
        f.write_str(s)
    }
}

/// A single cell value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL-style NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Bytes.
    Blob(Vec<u8>),
}

impl Value {
    /// The runtime type of this value; `Null` reports [`DataType::Any`].
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Any,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Bool(_) => DataType::Bool,
            Value::Blob(_) => DataType::Blob,
        }
    }

    /// Whether this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer payload, widening nothing.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric payload as f64 (ints widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether the value is "truthy" for predicate evaluation. NULL is falsy
    /// (three-valued logic collapsed at the filter boundary, as in SQL
    /// `WHERE`).
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            _ => false,
        }
    }

    /// SQL-style comparison: NULL compares as unknown (`None`); numeric
    /// types compare cross-type (Int vs Float, exactly — see
    /// [`cmp_int_f64`]); mismatched types are `None`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => cmp_int_f64(*a, *b),
            (Float(a), Int(b)) => cmp_int_f64(*b, *a).map(Ordering::reverse),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Blob(a), Blob(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering used by ORDER BY and sorted indexes. NULLs sort first,
    /// then by type tag for mismatched types, then by payload. NaN sorts
    /// after all other floats.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::Blob(_) => 4,
            }
        }
        // Normalize -0.0 to 0.0 so eq/hash/grouping treat them alike.
        fn norm(f: f64) -> f64 {
            if f == 0.0 {
                0.0
            } else {
                f
            }
        }
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => norm(*a).total_cmp(&norm(*b)),
            // Int↔Float compares exactly (never through a lossy `as f64`
            // cast), consistent with `sql_cmp`. Against NaN an integer sits
            // where its real value would under `f64::total_cmp`: after a
            // negative NaN, before a positive one.
            (Int(a), Float(b)) => match cmp_int_f64(*a, *b) {
                Some(ord) => ord,
                None if b.is_sign_negative() => Ordering::Greater,
                None => Ordering::Less,
            },
            (Float(a), Int(b)) => match cmp_int_f64(*b, *a).map(Ordering::reverse) {
                Some(ord) => ord,
                None if a.is_sign_negative() => Ordering::Less,
                None => Ordering::Greater,
            },
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Blob(a), Blob(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// Renders the value the way the paper's figures print cells.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1.0e15 {
                    format!("{:.1}", f)
                } else {
                    format!("{}", f)
                }
            }
            Value::Str(s) => s.clone(),
            Value::Bool(b) => if *b { "True" } else { "False" }.to_string(),
            Value::Blob(b) => format!("<{} bytes>", b.len()),
        }
    }
}

/// Equality for joins/distinct: follows `total_cmp` (so NULL == NULL groups
/// together, and 1 == 1.0).
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and equal-valued floats must hash identically because they
            // compare equal. Hash every numeric through its f64 bit pattern.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                // Normalize -0.0 to 0.0 so they hash alike.
                let f = if *f == 0.0 { 0.0 } else { *f };
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Blob(b) => {
                4u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

/// Exact comparison of an `i64` against an `f64`, `None` iff `b` is NaN.
///
/// The obvious `(a as f64).partial_cmp(&b)` silently rounds: every integer
/// above 2^53 collapses onto its nearest representable double, so e.g.
/// `2^53 + 1` compared equal to `2^53 as f64`. This version is range- and
/// fraction-aware: it compares against `b`'s integer part (exact for any
/// finite double inside the `i64` range) and breaks the tie on `b`'s
/// fractional part, so distinct values never compare equal.
pub fn cmp_int_f64(a: i64, b: f64) -> Option<Ordering> {
    if b.is_nan() {
        return None;
    }
    // 2^63 exactly; i64 spans [-2^63, 2^63). Also catches ±infinity.
    const TWO_POW_63: f64 = 9_223_372_036_854_775_808.0;
    let bf = b.floor();
    if bf >= TWO_POW_63 {
        return Some(Ordering::Less); // b ≥ 2^63 > every i64
    }
    if bf < -TWO_POW_63 {
        return Some(Ordering::Greater); // b < -2^63 = i64::MIN ≤ a
    }
    let bi = bf as i64; // exact: bf is integral and within [-2^63, 2^63)
    Some(a.cmp(&bi).then(if b > bf {
        Ordering::Less // a == ⌊b⌋ but b has a fractional part
    } else {
        Ordering::Equal
    }))
}

/// A row is a vector of values, positionally aligned with a [`crate::Schema`].
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_cross_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn cross_type_comparison_is_exact_above_2_pow_53() {
        // 2^53 + 1 is not representable as f64; the old `i64 as f64` cast
        // collapsed it onto 2^53 and reported Equal.
        let big = (1i64 << 53) + 1;
        let rounded = (1i64 << 53) as f64;
        assert_eq!(
            Value::Int(big).sql_cmp(&Value::Float(rounded)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Float(rounded).sql_cmp(&Value::Int(big)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(big).total_cmp(&Value::Float(rounded)),
            Ordering::Greater
        );
        // Exact equality still holds where the double really is the integer.
        assert_eq!(
            Value::Int(1i64 << 53).sql_cmp(&Value::Float(rounded)),
            Some(Ordering::Equal)
        );
        // i64::MAX rounds UP to 2^63 as f64; they must not compare equal.
        assert_eq!(
            Value::Int(i64::MAX).sql_cmp(&Value::Float(i64::MAX as f64)),
            Some(Ordering::Less)
        );
        // i64::MIN is exactly -2^63.
        assert_eq!(
            Value::Int(i64::MIN).sql_cmp(&Value::Float(i64::MIN as f64)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn cross_type_comparison_handles_range_fraction_and_nan() {
        assert_eq!(cmp_int_f64(0, f64::INFINITY), Some(Ordering::Less));
        assert_eq!(cmp_int_f64(0, f64::NEG_INFINITY), Some(Ordering::Greater));
        assert_eq!(cmp_int_f64(0, f64::NAN), None);
        assert_eq!(cmp_int_f64(0, 1e300), Some(Ordering::Less));
        assert_eq!(cmp_int_f64(0, -1e300), Some(Ordering::Greater));
        assert_eq!(cmp_int_f64(2, 1.5), Some(Ordering::Greater));
        assert_eq!(cmp_int_f64(1, 1.5), Some(Ordering::Less));
        assert_eq!(cmp_int_f64(-2, -1.5), Some(Ordering::Less));
        assert_eq!(cmp_int_f64(-1, -1.5), Some(Ordering::Greater));
        assert_eq!(cmp_int_f64(0, -0.0), Some(Ordering::Equal));
        // NaN keeps its total_cmp position relative to integers.
        assert_eq!(
            Value::Int(i64::MAX).total_cmp(&Value::Float(f64::NAN)),
            Ordering::Less
        );
        assert_eq!(
            Value::Int(i64::MIN).total_cmp(&Value::Float(-f64::NAN)),
            Ordering::Greater
        );
    }

    #[test]
    fn total_cmp_orders_nulls_first() {
        let mut vals = [Value::Int(1), Value::Null, Value::Str("a".into())];
        vals.sort_by(Value::total_cmp);
        assert!(vals[0].is_null());
    }

    #[test]
    fn eq_and_hash_agree_across_numeric_types() {
        let a = Value::Int(3);
        let b = Value::Float(3.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(Value::Int(5).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::Str("x".into()).is_truthy());
    }

    #[test]
    fn render_matches_paper_style() {
        assert_eq!(Value::Bool(true).render(), "True");
        assert_eq!(Value::Float(1.0).render(), "1.0");
        assert_eq!(Value::Int(1991).render(), "1991");
        assert_eq!(Value::Null.render(), "NULL");
    }
}
