//! Columnar batches for vectorized execution.
//!
//! The Volcano `next()` protocol pays a dynamic-dispatch call — and a
//! name-based schema resolve inside every expression — per *row*. Batch-at-
//! a-time execution amortizes both over [`RowBatch::capacity`]-sized chunks:
//! each column of a batch is one typed, null-bitmap-backed [`ColumnVector`],
//! so predicate and projection kernels run as tight loops over `i64`/`f64`
//! slices instead of per-row `Value` matches. The row-at-a-time path stays
//! as the compatibility baseline; parity tests assert both produce
//! identical results.

use crate::{DataType, Row, StorageError, Value};

/// Default number of rows per batch. Large enough to amortize per-batch
/// overhead, small enough that a batch's columns stay cache-resident.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// How a query pipeline is driven.
///
/// The mode governs the protocol the *pipeline spine* is pulled through
/// (root-to-leaf `next()` vs `next_batch()` calls). Blocking operators
/// (hash-join build side, aggregate, sort) always materialize their inputs
/// batch-wise internally — results are identical either way; Volcano is
/// the per-row-dispatch baseline on the streaming path, not a promise that
/// no batch is ever formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Classical tuple-at-a-time Volcano iteration.
    Volcano,
    /// Batch-at-a-time execution with the given batch capacity (≥ 1).
    Batched(usize),
}

impl ExecMode {
    /// The batch capacity, or `None` in Volcano mode.
    pub fn batch_size(&self) -> Option<usize> {
        match self {
            ExecMode::Volcano => None,
            ExecMode::Batched(n) => Some((*n).max(1)),
        }
    }
}

impl Default for ExecMode {
    fn default() -> Self {
        ExecMode::Batched(DEFAULT_BATCH_SIZE)
    }
}

/// A packed validity bitmap: bit `i` is set when slot `i` is NULL.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NullBitmap {
    words: Vec<u64>,
    len: usize,
    nulls: usize,
}

impl NullBitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// An all-valid bitmap of `len` slots.
    pub fn all_valid(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
            nulls: 0,
        }
    }

    /// Appends one slot.
    pub fn push(&mut self, is_null: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if is_null {
            self.words[word] |= 1u64 << (self.len % 64);
            self.nulls += 1;
        }
        self.len += 1;
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether slot `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of NULL slots.
    pub fn null_count(&self) -> usize {
        self.nulls
    }

    /// Whether any slot is NULL (lets kernels skip per-element checks).
    pub fn any_null(&self) -> bool {
        self.nulls > 0
    }
}

/// The typed payload of a [`ColumnVector`]. NULL slots hold a default
/// payload; the bitmap is authoritative.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// All non-NULL values are `Int`.
    Int(Vec<i64>),
    /// All non-NULL values are `Float`.
    Float(Vec<f64>),
    /// All non-NULL values are `Str`.
    Str(Vec<String>),
    /// All non-NULL values are `Bool`.
    Bool(Vec<bool>),
    /// Mixed-type or blob-bearing column: values stored as-is.
    Mixed(Vec<Value>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }
}

/// One column of a [`RowBatch`]: a typed vector plus a null bitmap. The
/// representation is chosen from the actual values so converting back to
/// rows reproduces them exactly (an `Int` stays an `Int`).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnVector {
    data: ColumnData,
    nulls: NullBitmap,
}

impl ColumnVector {
    /// Builds a column from owned values, picking the densest representation
    /// that round-trips exactly.
    pub fn from_values(values: Vec<Value>) -> Self {
        let mut nulls = NullBitmap::new();
        let mut tag: Option<DataType> = None;
        let mut uniform = true;
        for v in &values {
            nulls.push(v.is_null());
            if v.is_null() {
                continue;
            }
            let t = v.data_type();
            match tag {
                None => tag = Some(t),
                Some(prev) if prev == t => {}
                Some(_) => uniform = false,
            }
        }
        let data = if !uniform {
            ColumnData::Mixed(values)
        } else {
            match tag {
                Some(DataType::Int) => ColumnData::Int(
                    values
                        .into_iter()
                        .map(|v| v.as_int().unwrap_or_default())
                        .collect(),
                ),
                Some(DataType::Float) => ColumnData::Float(
                    values
                        .into_iter()
                        .map(|v| v.as_f64().unwrap_or_default())
                        .collect(),
                ),
                Some(DataType::Bool) => ColumnData::Bool(
                    values
                        .into_iter()
                        .map(|v| v.as_bool().unwrap_or_default())
                        .collect(),
                ),
                Some(DataType::Str) => ColumnData::Str(
                    values
                        .into_iter()
                        .map(|v| match v {
                            Value::Str(s) => s,
                            _ => String::new(),
                        })
                        .collect(),
                ),
                // All-NULL columns and blobs stay as raw values.
                _ => ColumnData::Mixed(values),
            }
        };
        Self { data, nulls }
    }

    /// Assembles a column from a typed payload and its bitmap. Callers must
    /// uphold the invariant that NULL slots hold default payloads.
    pub(crate) fn from_parts(data: ColumnData, nulls: NullBitmap) -> Self {
        debug_assert_eq!(data.len(), nulls.len());
        Self { data, nulls }
    }

    /// A column of `n` copies of `v` (literal broadcast).
    pub fn repeat(v: &Value, n: usize) -> Self {
        let mut nulls = NullBitmap::new();
        for _ in 0..n {
            nulls.push(v.is_null());
        }
        let data = match v {
            Value::Int(i) => ColumnData::Int(vec![*i; n]),
            Value::Float(f) => ColumnData::Float(vec![*f; n]),
            Value::Bool(b) => ColumnData::Bool(vec![*b; n]),
            Value::Str(s) => ColumnData::Str(vec![s.clone(); n]),
            _ => ColumnData::Mixed(vec![v.clone(); n]),
        };
        Self { data, nulls }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the column has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether slot `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.is_null(i)
    }

    /// Number of NULL slots.
    pub fn null_count(&self) -> usize {
        self.nulls.null_count()
    }

    /// The null bitmap.
    pub fn nulls(&self) -> &NullBitmap {
        &self.nulls
    }

    /// Reconstructs the value at slot `i`.
    pub fn value(&self, i: usize) -> Value {
        if self.nulls.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// The typed payload (representation inspection for kernels).
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The `i64` slice when this is an Int column.
    pub fn as_ints(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The `f64` slice when this is a Float column.
    pub fn as_floats(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The `bool` slice when this is a Bool column.
    pub fn as_bools(&self) -> Option<&[bool]> {
        match &self.data {
            ColumnData::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The string slice when this is a Str column.
    pub fn as_strs(&self) -> Option<&[String]> {
        match &self.data {
            ColumnData::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Slot `i` widened to `f64` (Int or Float, non-NULL).
    #[inline]
    pub fn numeric_at(&self, i: usize) -> Option<f64> {
        if self.nulls.is_null(i) {
            return None;
        }
        match &self.data {
            ColumnData::Int(v) => Some(v[i] as f64),
            ColumnData::Float(v) => Some(v[i]),
            ColumnData::Mixed(v) => v[i].as_f64(),
            _ => None,
        }
    }

    /// SQL `WHERE` truthiness per slot (NULL is falsy).
    pub fn truthy_mask(&self) -> Vec<bool> {
        let n = self.len();
        let mut mask = Vec::with_capacity(n);
        match &self.data {
            ColumnData::Bool(v) => {
                for (i, b) in v.iter().enumerate() {
                    mask.push(*b && !self.nulls.is_null(i));
                }
            }
            ColumnData::Int(v) => {
                for (i, x) in v.iter().enumerate() {
                    mask.push(*x != 0 && !self.nulls.is_null(i));
                }
            }
            ColumnData::Float(v) => {
                for (i, x) in v.iter().enumerate() {
                    mask.push(*x != 0.0 && !self.nulls.is_null(i));
                }
            }
            _ => {
                for i in 0..n {
                    mask.push(self.value(i).is_truthy());
                }
            }
        }
        mask
    }

    /// A new column keeping only slots where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> ColumnVector {
        debug_assert_eq!(mask.len(), self.len());
        let keep = |i: &usize| mask[*i];
        let mut nulls = NullBitmap::new();
        for i in (0..self.len()).filter(keep) {
            nulls.push(self.nulls.is_null(i));
        }
        let data = match &self.data {
            ColumnData::Int(v) => {
                ColumnData::Int((0..v.len()).filter(keep).map(|i| v[i]).collect())
            }
            ColumnData::Float(v) => {
                ColumnData::Float((0..v.len()).filter(keep).map(|i| v[i]).collect())
            }
            ColumnData::Bool(v) => {
                ColumnData::Bool((0..v.len()).filter(keep).map(|i| v[i]).collect())
            }
            ColumnData::Str(v) => {
                ColumnData::Str((0..v.len()).filter(keep).map(|i| v[i].clone()).collect())
            }
            ColumnData::Mixed(v) => {
                ColumnData::Mixed((0..v.len()).filter(keep).map(|i| v[i].clone()).collect())
            }
        };
        ColumnVector { data, nulls }
    }

    /// All values, reconstructed.
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.value(i)).collect()
    }

    /// All values, moving payloads out (no clones).
    pub fn into_values(self) -> Vec<Value> {
        let nulls = self.nulls;
        let wrap = |i: usize, v: Value| if nulls.is_null(i) { Value::Null } else { v };
        match self.data {
            ColumnData::Int(v) => v
                .into_iter()
                .enumerate()
                .map(|(i, x)| wrap(i, Value::Int(x)))
                .collect(),
            ColumnData::Float(v) => v
                .into_iter()
                .enumerate()
                .map(|(i, x)| wrap(i, Value::Float(x)))
                .collect(),
            ColumnData::Str(v) => v
                .into_iter()
                .enumerate()
                .map(|(i, x)| wrap(i, Value::Str(x)))
                .collect(),
            ColumnData::Bool(v) => v
                .into_iter()
                .enumerate()
                .map(|(i, x)| wrap(i, Value::Bool(x)))
                .collect(),
            ColumnData::Mixed(v) => v,
        }
    }
}

/// A horizontal slice of a relation in columnar layout: one
/// [`ColumnVector`] per schema column, all the same length.
#[derive(Debug, Clone, PartialEq)]
pub struct RowBatch {
    columns: Vec<ColumnVector>,
    rows: usize,
}

impl RowBatch {
    /// Builds a batch from columns; all must share one length.
    pub fn from_columns(columns: Vec<ColumnVector>) -> Result<Self, StorageError> {
        let rows = columns.first().map(ColumnVector::len).unwrap_or(0);
        if let Some(bad) = columns.iter().find(|c| c.len() != rows) {
            return Err(StorageError::ArityMismatch {
                expected: rows,
                got: bad.len(),
            });
        }
        Ok(Self { columns, rows })
    }

    /// Transposes rows (all of arity `arity`) into a columnar batch.
    pub fn from_rows(arity: usize, rows: Vec<Row>) -> Self {
        let n = rows.len();
        let mut cols: Vec<Vec<Value>> = (0..arity).map(|_| Vec::with_capacity(n)).collect();
        for row in rows {
            for (c, v) in row.into_iter().enumerate() {
                cols[c].push(v);
            }
        }
        Self {
            columns: cols.into_iter().map(ColumnVector::from_values).collect(),
            rows: n,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Whether the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column `c`.
    pub fn column(&self, c: usize) -> &ColumnVector {
        &self.columns[c]
    }

    /// All columns.
    pub fn columns(&self) -> &[ColumnVector] {
        &self.columns
    }

    /// Reconstructs row `i`.
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Transposes back to rows.
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.rows).map(|i| self.row(i)).collect()
    }

    /// Transposes back to rows, moving every value out (no clones).
    pub fn into_rows(self) -> Vec<Row> {
        let rows = self.rows;
        let mut iters: Vec<std::vec::IntoIter<Value>> = self
            .columns
            .into_iter()
            .map(|c| c.into_values().into_iter())
            .collect();
        (0..rows)
            .map(|_| {
                iters
                    .iter_mut()
                    .map(|it| it.next().expect("columns share the batch length"))
                    .collect()
            })
            .collect()
    }

    /// A new batch keeping only rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> RowBatch {
        let rows = mask.iter().filter(|m| **m).count();
        RowBatch {
            columns: self.columns.iter().map(|c| c.filter(mask)).collect(),
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values() -> Vec<Value> {
        vec![Value::Int(1), Value::Null, Value::Int(3)]
    }

    #[test]
    fn int_column_round_trips_exactly() {
        let col = ColumnVector::from_values(values());
        assert_eq!(col.len(), 3);
        assert_eq!(col.null_count(), 1);
        assert!(col.is_null(1));
        assert_eq!(col.as_ints(), Some(&[1i64, 0, 3][..]));
        assert_eq!(col.to_values(), values());
    }

    #[test]
    fn mixed_column_falls_back_to_values() {
        let vals = vec![Value::Int(1), Value::Str("x".into())];
        let col = ColumnVector::from_values(vals.clone());
        assert!(col.as_ints().is_none());
        assert_eq!(col.to_values(), vals);
    }

    #[test]
    fn int_and_float_mix_is_not_widened() {
        // Parity with the row path demands Int(1) stays Int(1).
        let vals = vec![Value::Int(1), Value::Float(2.5)];
        let col = ColumnVector::from_values(vals.clone());
        assert_eq!(col.to_values(), vals);
        assert_eq!(col.value(0), Value::Int(1));
        assert!(matches!(col.value(0), Value::Int(_)));
    }

    #[test]
    fn all_null_column() {
        let col = ColumnVector::from_values(vec![Value::Null, Value::Null]);
        assert_eq!(col.null_count(), 2);
        assert_eq!(col.to_values(), vec![Value::Null, Value::Null]);
    }

    #[test]
    fn bitmap_across_word_boundary() {
        let mut vals = Vec::new();
        for i in 0..130 {
            vals.push(if i % 3 == 0 {
                Value::Null
            } else {
                Value::Int(i)
            });
        }
        let col = ColumnVector::from_values(vals.clone());
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(col.is_null(i), v.is_null(), "slot {i}");
        }
        assert_eq!(col.to_values(), vals);
    }

    #[test]
    fn repeat_broadcasts_literals() {
        let col = ColumnVector::repeat(&Value::Float(0.5), 4);
        assert_eq!(col.as_floats(), Some(&[0.5, 0.5, 0.5, 0.5][..]));
        let nul = ColumnVector::repeat(&Value::Null, 2);
        assert_eq!(nul.null_count(), 2);
    }

    #[test]
    fn truthy_mask_matches_row_semantics() {
        let col = ColumnVector::from_values(vec![Value::Int(0), Value::Int(7), Value::Null]);
        assert_eq!(col.truthy_mask(), vec![false, true, false]);
        let col = ColumnVector::from_values(vec![Value::Bool(true), Value::Null]);
        assert_eq!(col.truthy_mask(), vec![true, false]);
    }

    #[test]
    fn batch_transpose_round_trips() {
        let rows = vec![
            vec![Value::Int(1), "a".into(), Value::Null],
            vec![Value::Int(2), "b".into(), Value::Float(0.5)],
        ];
        let batch = RowBatch::from_rows(3, rows.clone());
        assert_eq!(batch.num_rows(), 2);
        assert_eq!(batch.num_columns(), 3);
        assert_eq!(batch.to_rows(), rows);
        assert_eq!(batch.row(1), rows[1]);
    }

    #[test]
    fn batch_filter_keeps_masked_rows() {
        let rows = vec![
            vec![Value::Int(1)],
            vec![Value::Int(2)],
            vec![Value::Int(3)],
        ];
        let batch = RowBatch::from_rows(1, rows);
        let kept = batch.filter(&[true, false, true]);
        assert_eq!(kept.num_rows(), 2);
        assert_eq!(kept.column(0).as_ints(), Some(&[1i64, 3][..]));
    }

    #[test]
    fn from_columns_rejects_ragged() {
        let a = ColumnVector::from_values(vec![Value::Int(1)]);
        let b = ColumnVector::from_values(vec![Value::Int(1), Value::Int(2)]);
        assert!(RowBatch::from_columns(vec![a, b]).is_err());
    }

    #[test]
    fn exec_mode_batch_size() {
        assert_eq!(ExecMode::Volcano.batch_size(), None);
        assert_eq!(ExecMode::Batched(0).batch_size(), Some(1));
        assert_eq!(ExecMode::default().batch_size(), Some(DEFAULT_BATCH_SIZE));
    }
}
