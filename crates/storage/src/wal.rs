//! Write-ahead log: length-prefixed, CRC-checksummed logical redo records.
//!
//! Durability in KathDB is logical: every mutating statement (CREATE TABLE,
//! INSERT, DROP TABLE) and every function-registry change is encoded as a
//! [`WalRecord`], appended to the active log segment, and fsynced *before*
//! the in-memory catalog is touched. Crash recovery replays the log tail on
//! top of the newest valid snapshot (see [`crate::Durability`]).
//!
//! Frame layout: `u32 payload length | u32 CRC32(length bytes) |
//! u32 CRC32(payload) | payload`. A crash mid-append leaves a *torn* final
//! frame — fewer bytes on disk than the (verified) length prefix promises.
//! Torn tails are silently dropped at open (the record was never
//! acknowledged as applied) and the file is truncated so the next append
//! overwrites them. The length prefix carries its own checksum so a
//! bit-flipped length field is distinguishable from a torn tail: any
//! checksum or decode failure on bytes that are actually present is real
//! corruption and surfaces as [`StorageError::Corrupt`] — recovery never
//! fabricates rows and never silently discards acknowledged ones.

use crate::io::{with_retry, Io, RetryPolicy};
use crate::persist::{encode_table, get_str, get_value, put_str, put_value};
use crate::{decode_table, Row, StorageError, Table};
use bytes::{Buf, BufMut, BytesMut};
use std::path::{Path, PathBuf};

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Encodes one record as a complete WAL frame (header + payload).
fn encode_frame(record: &WalRecord) -> Result<Vec<u8>, StorageError> {
    let payload = record.encode()?;
    let len_bytes = crate::persist::encodable_len("wal payload", payload.len())?.to_be_bytes();
    let mut frame = Vec::with_capacity(payload.len() + 12);
    frame.extend_from_slice(&len_bytes);
    frame.extend_from_slice(&crc32(&len_bytes).to_be_bytes());
    frame.extend_from_slice(&crc32(&payload).to_be_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// CRC32 (IEEE 802.3 polynomial), the checksum of WAL frames, KTBL v2
/// trailers, and snapshot manifests.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One logical redo record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Registers a new table (schema plus any initial rows — SQL `CREATE
    /// TABLE` logs an empty one, facade ingests log the full contents).
    CreateTable(Table),
    /// Appends rows to an existing table.
    Insert {
        /// Target table name.
        table: String,
        /// The evaluated row literals (values, not expressions, so replay
        /// is deterministic).
        rows: Vec<Row>,
    },
    /// Removes a table.
    DropTable(String),
    /// Replaces the function registry with the given serialized form (the
    /// payload is opaque JSON owned by `kath_fao`; storage only frames and
    /// checksums it).
    Functions(String),
    /// Opens transaction `txid`. Everything between a `Begin` and its
    /// matching `Commit` is one atomic unit: recovery replays the enclosed
    /// records only when the `Commit` frame is on disk.
    Begin(u64),
    /// Commits transaction `txid` (must match the open `Begin`).
    Commit(u64),
    /// Aborts transaction `txid`: the enclosed records are discarded at
    /// replay. Written when sealing a crash-torn open transaction so later
    /// appends are not mistaken for its continuation.
    Abort(u64),
}

const TAG_CREATE: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_DROP: u8 = 3;
const TAG_FUNCTIONS: u8 = 4;
const TAG_BEGIN: u8 = 5;
const TAG_COMMIT: u8 = 6;
const TAG_ABORT: u8 = 7;

impl WalRecord {
    /// Encodes the record payload (tag byte + body).
    pub fn encode(&self) -> Result<Vec<u8>, StorageError> {
        let mut buf = BytesMut::new();
        match self {
            WalRecord::CreateTable(t) => {
                buf.put_u8(TAG_CREATE);
                buf.put_slice(&encode_table(t)?);
            }
            WalRecord::Insert { table, rows } => {
                buf.put_u8(TAG_INSERT);
                put_str(&mut buf, table)?;
                buf.put_u32(crate::persist::encodable_len("rows", rows.len())?);
                for row in rows {
                    buf.put_u32(crate::persist::encodable_len("row", row.len())?);
                    for v in row {
                        put_value(&mut buf, v)?;
                    }
                }
            }
            WalRecord::DropTable(name) => {
                buf.put_u8(TAG_DROP);
                put_str(&mut buf, name)?;
            }
            WalRecord::Functions(json) => {
                buf.put_u8(TAG_FUNCTIONS);
                buf.put_slice(json.as_bytes());
            }
            WalRecord::Begin(txid) => {
                buf.put_u8(TAG_BEGIN);
                buf.put_u64(*txid);
            }
            WalRecord::Commit(txid) => {
                buf.put_u8(TAG_COMMIT);
                buf.put_u64(*txid);
            }
            WalRecord::Abort(txid) => {
                buf.put_u8(TAG_ABORT);
                buf.put_u64(*txid);
            }
        }
        Ok(buf.to_vec())
    }

    /// Decodes a record payload.
    pub fn decode(mut data: &[u8]) -> Result<WalRecord, StorageError> {
        let corrupt = |m: &str| StorageError::Corrupt(m.to_string());
        if !data.has_remaining() {
            return Err(corrupt("truncated wal record tag"));
        }
        match data.get_u8() {
            TAG_CREATE => Ok(WalRecord::CreateTable(decode_table(data)?)),
            TAG_INSERT => {
                let table = get_str(&mut data)?;
                if data.remaining() < 4 {
                    return Err(corrupt("truncated wal row count"));
                }
                let nrows = data.get_u32() as usize;
                let mut rows = Vec::with_capacity(nrows.min(1 << 16));
                for _ in 0..nrows {
                    if data.remaining() < 4 {
                        return Err(corrupt("truncated wal row arity"));
                    }
                    let arity = data.get_u32() as usize;
                    if arity > 1 << 16 {
                        return Err(corrupt("implausible wal row arity"));
                    }
                    let mut row: Row = Vec::with_capacity(arity);
                    for _ in 0..arity {
                        row.push(get_value(&mut data)?);
                    }
                    rows.push(row);
                }
                if data.has_remaining() {
                    return Err(corrupt("trailing bytes after wal insert record"));
                }
                Ok(WalRecord::Insert { table, rows })
            }
            TAG_DROP => {
                let name = get_str(&mut data)?;
                if data.has_remaining() {
                    return Err(corrupt("trailing bytes after wal drop record"));
                }
                Ok(WalRecord::DropTable(name))
            }
            TAG_FUNCTIONS => {
                let json = std::str::from_utf8(data)
                    .map_err(|_| corrupt("wal functions record is not utf-8"))?;
                Ok(WalRecord::Functions(json.to_string()))
            }
            tag @ (TAG_BEGIN | TAG_COMMIT | TAG_ABORT) => {
                if data.remaining() < 8 {
                    return Err(corrupt("truncated wal txn marker"));
                }
                let txid = data.get_u64();
                if data.has_remaining() {
                    return Err(corrupt("trailing bytes after wal txn marker"));
                }
                Ok(match tag {
                    TAG_BEGIN => WalRecord::Begin(txid),
                    TAG_COMMIT => WalRecord::Commit(txid),
                    _ => WalRecord::Abort(txid),
                })
            }
            t => Err(corrupt(&format!("unknown wal record tag {t}"))),
        }
    }
}

/// The four header bytes at `at`. The callers' length checks make a short
/// slice impossible, but decode paths return typed errors rather than
/// panic, so the bound is re-checked instead of unwrapped.
fn header4(data: &[u8], at: usize) -> Result<[u8; 4], StorageError> {
    data.get(at..at + 4)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| StorageError::Corrupt("wal frame header truncated".to_string()))
}

/// Decodes every complete frame in `data`. Returns the records plus the
/// byte offset of the end of the last complete frame (the valid length).
/// An incomplete final frame is dropped; a complete frame that fails its
/// checksum or decode is `Corrupt`.
pub(crate) fn decode_frames(data: &[u8]) -> Result<(Vec<WalRecord>, u64), StorageError> {
    let mut records = Vec::new();
    let mut off = 0usize;
    loop {
        if data.len() - off < 12 {
            break; // empty or torn header
        }
        // The header checksum separates "file ends mid-frame" (torn tail,
        // skip) from "length field flipped on disk" (corruption, error):
        // trusting an unverified length would let one bad bit silently
        // discard every later record as an apparent tail.
        let len_bytes = header4(data, off)?;
        let header_crc = u32::from_be_bytes(header4(data, off + 4)?);
        let payload_crc = u32::from_be_bytes(header4(data, off + 8)?);
        if crc32(&len_bytes) != header_crc {
            return Err(StorageError::Corrupt(
                "wal frame header checksum mismatch".to_string(),
            ));
        }
        let len = u32::from_be_bytes(len_bytes) as usize;
        let start = off + 12;
        let end = match start.checked_add(len) {
            Some(end) if end <= data.len() => end,
            _ => break, // verified length, missing bytes: a torn payload
        };
        let payload = &data[start..end];
        if crc32(payload) != payload_crc {
            return Err(StorageError::Corrupt(
                "wal record checksum mismatch".to_string(),
            ));
        }
        records.push(WalRecord::decode(payload)?);
        off = end;
    }
    Ok((records, off as u64))
}

/// Outcome of [`filter_committed`]: the records recovery should replay,
/// plus what the filter learned about the log tail.
#[derive(Debug, Clone, PartialEq)]
pub struct FilteredLog {
    /// Records to replay: every bare (unframed) record, plus the contents
    /// of each `Begin..Commit` span, in log order.
    pub records: Vec<WalRecord>,
    /// A transaction left open at the end of the log (its buffered records
    /// were discarded). The caller seals it with an [`WalRecord::Abort`] so
    /// later appends are never mistaken for its continuation.
    pub open_txn: Option<u64>,
    /// Complete transactions whose `Commit` frame was found.
    pub committed_txns: u64,
    /// Transactions dropped: explicit `Abort` frames plus an open tail.
    pub discarded_txns: u64,
    /// Highest txid seen in any marker (0 when none) — the txid allocator
    /// resumes above this.
    pub max_txid: u64,
}

/// Applies transaction framing to a replayed record stream: bare records
/// (autocommitted statements) pass through; `Begin..Commit` spans flush
/// atomically; `Begin..Abort` spans and a trailing open transaction are
/// discarded. Malformed framing — a nested `Begin`, or a `Commit`/`Abort`
/// with no or the wrong open transaction — is [`StorageError::Corrupt`]:
/// the group-commit writer emits each transaction as one contiguous batch,
/// so interleaved or unbalanced markers can only come from a corrupted log.
pub fn filter_committed(records: Vec<WalRecord>) -> Result<FilteredLog, StorageError> {
    let corrupt = |m: String| StorageError::Corrupt(m);
    let mut out = FilteredLog {
        records: Vec::with_capacity(records.len()),
        open_txn: None,
        committed_txns: 0,
        discarded_txns: 0,
        max_txid: 0,
    };
    let mut open: Option<(u64, Vec<WalRecord>)> = None;
    for r in records {
        match r {
            WalRecord::Begin(txid) => {
                out.max_txid = out.max_txid.max(txid);
                if let Some((prev, _)) = open {
                    return Err(corrupt(format!(
                        "wal begin({txid}) while transaction {prev} is open"
                    )));
                }
                open = Some((txid, Vec::new()));
            }
            WalRecord::Commit(txid) => {
                out.max_txid = out.max_txid.max(txid);
                match open.take() {
                    Some((id, buf)) if id == txid => {
                        out.records.extend(buf);
                        out.committed_txns += 1;
                    }
                    Some((id, _)) => {
                        return Err(corrupt(format!(
                            "wal commit({txid}) does not match open transaction {id}"
                        )));
                    }
                    None => {
                        return Err(corrupt(format!(
                            "wal commit({txid}) with no open transaction"
                        )));
                    }
                }
            }
            WalRecord::Abort(txid) => {
                out.max_txid = out.max_txid.max(txid);
                match open.take() {
                    Some((id, _)) if id == txid => out.discarded_txns += 1,
                    Some((id, _)) => {
                        return Err(corrupt(format!(
                            "wal abort({txid}) does not match open transaction {id}"
                        )));
                    }
                    None => {
                        return Err(corrupt(format!(
                            "wal abort({txid}) with no open transaction"
                        )));
                    }
                }
            }
            other => match &mut open {
                Some((_, buf)) => buf.push(other),
                None => out.records.push(other),
            },
        }
    }
    if let Some((txid, _)) = open {
        // A crash mid-group-write can leave complete frames of a partial
        // transaction at the tail; they were never acknowledged.
        out.open_txn = Some(txid);
        out.discarded_txns += 1;
    }
    Ok(out)
}

/// One append-only log segment, fsynced on every append. All file
/// operations route through the segment's [`Io`] handle, so fault
/// injection exercises the exact append/repair paths a real disk error
/// would hit.
#[derive(Debug)]
pub struct Wal {
    io: Io,
    retry: RetryPolicy,
    path: PathBuf,
    /// End of the last complete frame (where the next append goes).
    len: u64,
    /// Complete records in the segment.
    records: u64,
    /// Records appended through this handle (excludes replayed ones).
    appended: u64,
}

impl Wal {
    /// [`Wal::open_with`] over the real backend.
    pub fn open(path: &Path) -> Result<(Self, Vec<WalRecord>), StorageError> {
        Self::open_with(path, Io::real())
    }

    /// Opens (creating if absent) a segment and replays its complete
    /// records. A torn final frame is dropped and the file truncated to the
    /// last valid offset, so the next append overwrites it. If that
    /// truncation fails even after retrying transient errors, open fails
    /// with [`StorageError::TornTail`] rather than handing back a segment
    /// whose poisoned tail would end up buried under later appends.
    pub fn open_with(path: &Path, io: Io) -> Result<(Self, Vec<WalRecord>), StorageError> {
        let retry = RetryPolicy::default();
        if let Some(dir) = path.parent() {
            io.create_dir_all(dir)?;
        }
        let data = match io.read_opt(path)? {
            Some(d) => d,
            None => {
                // Create the (empty) segment eagerly so recovery listings
                // and chain checks see it.
                io.write_file(path, &[])?;
                Vec::new()
            }
        };
        let (records, valid_len) = decode_frames(&data)?;
        if data.len() as u64 != valid_len {
            with_retry(&retry, || {
                io.set_len(path, valid_len)?;
                io.fsync(path)
            })
            .map_err(|e| {
                StorageError::TornTail(format!(
                    "failed to truncate '{}' to {valid_len} bytes: {e}",
                    path.display()
                ))
            })?;
        }
        Ok((
            Wal {
                io,
                retry,
                path: path.to_path_buf(),
                len: valid_len,
                records: records.len() as u64,
                appended: 0,
            },
            records,
        ))
    }

    /// Appends one record: frame written at the valid tail, then fsynced.
    /// Only after this returns may the record be applied in memory.
    /// Transient failures are retried under the segment's [`RetryPolicy`];
    /// the rewrite targets a fixed offset, so a retry after a short write
    /// simply overwrites the torn prefix. On failure nothing is
    /// acknowledged and the valid tail is unchanged — a later append
    /// overwrites whatever the failed attempt left behind.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), StorageError> {
        let frame = encode_frame(record)?;
        with_retry(&self.retry, || {
            self.io.write_at(&self.path, self.len, &frame)?;
            self.io.fsync(&self.path)
        })?;
        self.len += frame.len() as u64;
        self.records += 1;
        self.appended += 1;
        Ok(())
    }

    /// Appends a batch of records as one contiguous write **without
    /// fsyncing**, returning the new tail offset. The group-commit
    /// coordinator calls this under its commit lock, then fsyncs outside
    /// the lock (one fsync acknowledges every batch appended since the
    /// last one). Until that fsync returns, the records are *not* durable;
    /// on fsync failure the caller rolls the tail back with
    /// [`Wal::rewind`]. A transaction's `Begin..Commit` span is always one
    /// batch, so a crash can tear at most the trailing batch — never
    /// interleave two transactions.
    pub fn append_batch_nosync<'a>(
        &mut self,
        records: impl IntoIterator<Item = &'a WalRecord>,
    ) -> Result<u64, StorageError> {
        let mut buf = Vec::new();
        let mut n = 0u64;
        for r in records {
            buf.extend_from_slice(&encode_frame(r)?);
            n += 1;
        }
        with_retry(&self.retry, || self.io.write_at(&self.path, self.len, &buf))?;
        self.len += buf.len() as u64;
        self.records += n;
        self.appended += n;
        Ok(self.len)
    }

    /// Fsyncs the segment (pairs with [`Wal::append_batch_nosync`]).
    pub fn sync(&self) -> Result<(), StorageError> {
        Ok(with_retry(&self.retry, || self.io.fsync(&self.path))?)
    }

    /// Clones the handles a group-commit leader needs to fsync this
    /// segment *outside* the commit lock.
    pub fn sync_handles(&self) -> (Io, PathBuf, RetryPolicy) {
        (self.io.clone(), self.path.clone(), self.retry)
    }

    /// Rolls the in-memory tail back to `(len, records)` after a failed
    /// group fsync, so the next append overwrites the unacknowledged
    /// bytes. Best-effort truncates the file too (purely cosmetic — the
    /// bytes past the tail are dead either way, exactly like a torn tail).
    pub fn rewind(&mut self, len: u64, records: u64) {
        debug_assert!(len <= self.len && records <= self.records);
        self.appended -= (self.records - records).min(self.appended);
        self.len = len;
        self.records = records;
        let _ = self.io.set_len(&self.path, len);
    }

    /// Read-only replay of a whole segment file (used for rotated-out
    /// segments during recovery). Missing file = empty segment.
    pub fn replay_file(path: &Path) -> Result<Vec<WalRecord>, StorageError> {
        Self::replay_file_with(path, &Io::real())
    }

    /// [`Wal::replay_file`] through an explicit [`Io`] handle.
    pub fn replay_file_with(path: &Path, io: &Io) -> Result<Vec<WalRecord>, StorageError> {
        let data = io.read_opt(path)?.unwrap_or_default();
        decode_frames(&data).map(|(records, _)| records)
    }

    /// Complete records in the segment (replayed + appended).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Records appended through this handle — what a clean shutdown would
    /// lose by not checkpointing (replayed records are already durable as
    /// a replayable tail).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Valid bytes in the segment.
    pub fn bytes(&self) -> u64 {
        self.len
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, FaultKind, FaultPlan, IoOp, Schema, Value};
    use std::fs::OpenOptions;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kathdb_wal_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        let t = Table::from_rows(
            "kv",
            Schema::of(&[("k", DataType::Int), ("v", DataType::Str)]),
            vec![],
        )
        .unwrap();
        vec![
            WalRecord::CreateTable(t),
            WalRecord::Insert {
                table: "kv".into(),
                rows: vec![
                    vec![1i64.into(), "a".into()],
                    vec![2i64.into(), Value::Null],
                ],
            },
            WalRecord::Functions("{\"functions\": []}".into()),
            WalRecord::DropTable("kv".into()),
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_encode_decode_round_trip() {
        for r in sample_records() {
            let bytes = r.encode().unwrap();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), r);
        }
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = tmp("roundtrip");
        let path = dir.join("000000.log");
        let records = sample_records();
        {
            let (mut wal, replayed) = Wal::open(&path).unwrap();
            assert!(replayed.is_empty());
            for r in &records {
                wal.append(r).unwrap();
            }
            assert_eq!(wal.records(), records.len() as u64);
        }
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, records);
        assert_eq!(wal.records(), records.len() as u64);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_tail_is_skipped_and_overwritten() {
        let dir = tmp("torn");
        let path = dir.join("000000.log");
        let records = sample_records();
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        // Tear the final record: drop its last 3 bytes.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        // Replay skips the torn record…
        let (mut wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, records[..records.len() - 1]);
        // …and the next append overwrites it cleanly.
        let extra = WalRecord::DropTable("other".into());
        wal.append(&extra).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&path).unwrap();
        let mut expected = records[..records.len() - 1].to_vec();
        expected.push(extra);
        assert_eq!(replayed, expected);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn flipped_length_field_is_corrupt_not_a_silent_tail() {
        let dir = tmp("lenflip");
        let path = dir.join("000000.log");
        let records = sample_records();
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        // Flip a bit in the FIRST frame's length prefix: without a header
        // checksum this would read as a torn tail and silently discard
        // (and truncate away) every fsync-acknowledged record after it.
        let mut data = std::fs::read(&path).unwrap();
        data[2] ^= 0x10;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(Wal::open(&path), Err(StorageError::Corrupt(_))));
        // Nothing was truncated: the bytes are still there for forensics.
        assert_eq!(std::fs::read(&path).unwrap().len(), data.len());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_tail_truncate_failure_is_a_typed_error() {
        let dir = tmp("torntyped");
        let path = dir.join("000000.log");
        let records = sample_records();
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        // Every truncate attempt fails permanently: open must refuse with
        // a typed error, not proceed with the poisoned tail…
        let io = Io::real();
        io.install_faults(FaultPlan::probabilistic(1, 1.0).on_ops(&[IoOp::Truncate]));
        assert!(matches!(
            Wal::open_with(&path, io),
            Err(StorageError::TornTail(_))
        ));
        // …and the bytes are untouched for forensics.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len - 3);
        // A transient truncate failure is retried away.
        let io = Io::real();
        io.install_faults(FaultPlan::at(1, FaultKind::Transient).on_ops(&[IoOp::Truncate]));
        let (_, replayed) = Wal::open_with(&path, io).unwrap();
        assert_eq!(replayed, records[..records.len() - 1]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn append_retries_transient_faults() {
        let dir = tmp("retryappend");
        let path = dir.join("000000.log");
        let io = Io::real();
        let (mut wal, _) = Wal::open_with(&path, io.clone()).unwrap();
        let records = sample_records();
        // A short write tears the first attempt; the retry overwrites the
        // torn prefix at the same offset.
        io.install_faults(FaultPlan::at(1, FaultKind::ShortWrite).on_ops(&[IoOp::Write]));
        for r in &records {
            wal.append(r).unwrap();
        }
        io.clear_faults();
        drop(wal);
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, records);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn append_surfaces_permanent_faults_without_acknowledging() {
        let dir = tmp("permappend");
        let path = dir.join("000000.log");
        let io = Io::real();
        let (mut wal, _) = Wal::open_with(&path, io.clone()).unwrap();
        let records = sample_records();
        wal.append(&records[0]).unwrap();
        io.install_faults(FaultPlan::probabilistic(1, 1.0).with_kinds(&[FaultKind::Enospc]));
        assert!(matches!(wal.append(&records[1]), Err(StorageError::Io(_))));
        assert_eq!(wal.records(), 1, "failed append must not be counted");
        io.clear_faults();
        // The failed attempt left no acknowledged record behind…
        drop(wal);
        let (mut wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, records[..1]);
        // …and the tail is clean for the next append.
        wal.append(&records[1]).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, records[..2]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn txn_markers_encode_decode_round_trip() {
        for r in [
            WalRecord::Begin(0),
            WalRecord::Commit(42),
            WalRecord::Abort(u64::MAX),
        ] {
            let bytes = r.encode().unwrap();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), r);
        }
    }

    #[test]
    fn filter_committed_replays_bare_and_committed_only() {
        let ins = |t: &str| WalRecord::Insert {
            table: t.into(),
            rows: vec![vec![1i64.into()]],
        };
        let log = vec![
            ins("bare1"),
            WalRecord::Begin(1),
            ins("tx1_a"),
            ins("tx1_b"),
            WalRecord::Commit(1),
            WalRecord::Begin(2),
            ins("tx2"),
            WalRecord::Abort(2),
            ins("bare2"),
            WalRecord::Begin(3),
            ins("tx3_torn"),
        ];
        let f = filter_committed(log).unwrap();
        assert_eq!(
            f.records,
            vec![ins("bare1"), ins("tx1_a"), ins("tx1_b"), ins("bare2")]
        );
        assert_eq!(f.open_txn, Some(3));
        assert_eq!(f.committed_txns, 1);
        assert_eq!(f.discarded_txns, 2);
        assert_eq!(f.max_txid, 3);
    }

    #[test]
    fn filter_committed_rejects_malformed_framing() {
        let cases: Vec<Vec<WalRecord>> = vec![
            vec![WalRecord::Begin(1), WalRecord::Begin(2)],
            vec![WalRecord::Begin(1), WalRecord::Commit(2)],
            vec![WalRecord::Commit(7)],
            vec![WalRecord::Abort(7)],
            vec![WalRecord::Begin(1), WalRecord::Abort(9)],
        ];
        for log in cases {
            assert!(
                matches!(filter_committed(log.clone()), Err(StorageError::Corrupt(_))),
                "expected Corrupt for {log:?}"
            );
        }
    }

    #[test]
    fn append_batch_nosync_then_sync_round_trip() {
        let dir = tmp("batch");
        let path = dir.join("000000.log");
        let records = sample_records();
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            let framed: Vec<WalRecord> = std::iter::once(WalRecord::Begin(1))
                .chain(records.iter().cloned())
                .chain(std::iter::once(WalRecord::Commit(1)))
                .collect();
            let tail = wal.append_batch_nosync(framed.iter()).unwrap();
            assert_eq!(tail, wal.bytes());
            assert_eq!(wal.records(), framed.len() as u64);
            wal.sync().unwrap();
        }
        let (_, replayed) = Wal::open(&path).unwrap();
        let f = filter_committed(replayed).unwrap();
        assert_eq!(f.records, records);
        assert_eq!(f.committed_txns, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rewind_discards_unsynced_tail() {
        let dir = tmp("rewind");
        let path = dir.join("000000.log");
        let records = sample_records();
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&records[0]).unwrap();
        let (durable_len, durable_records) = (wal.bytes(), wal.records());
        wal.append_batch_nosync(records[1..].iter()).unwrap();
        // Pretend the group fsync failed: roll back to the durable tail.
        wal.rewind(durable_len, durable_records);
        assert_eq!(wal.bytes(), durable_len);
        assert_eq!(wal.records(), durable_records);
        // The next append lands where the discarded batch began.
        wal.append(&records[3]).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, vec![records[0].clone(), records[3].clone()]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn checksum_mismatch_on_complete_frame_is_corrupt() {
        let dir = tmp("crc");
        let path = dir.join("000000.log");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
        }
        // Flip one payload byte of the *first* frame: still a complete
        // frame, so this is detectable corruption, not a torn tail.
        let mut data = std::fs::read(&path).unwrap();
        data[10] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(Wal::open(&path), Err(StorageError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(dir);
    }
}
