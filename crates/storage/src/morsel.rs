//! Morsel-driven parallel execution.
//!
//! A *morsel* is a fixed-size contiguous range of a scan's input — a few
//! batches' worth of rows. Workers claim morsels from a shared
//! [`MorselSource`] through an atomic cursor, run the (stateless) streaming
//! part of a pipeline over each claimed morsel, and hand back per-morsel
//! outputs. Because outputs are re-assembled **in morsel order**, the merged
//! stream is exactly the stream a serial run would have produced — the
//! scheduling of workers can never leak into results (the "encapsulation of
//! parallelism" Volcano asks of an execution model).
//!
//! The primitives here are deliberately small: a claimable range source, a
//! scoped-thread worker loop ([`run_morsels`]), and per-worker timing. The
//! SQL planner composes them with the shared-build hash join, partial
//! aggregation, and sorted-run merge from [`crate::ops`] into full parallel
//! query pipelines.

use crate::guard::QueryGuard;
use crate::StorageError;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// How many batches one morsel spans. Morsels are a small multiple of the
/// batch size so a worker amortizes its claim (one atomic increment) over
/// several tight batch loops, while the work-list stays fine-grained enough
/// to balance skewed pipelines.
pub const MORSEL_BATCHES: usize = 4;

/// One claimed unit of scan work: rows `[start, end)` of the source, with
/// its position in scan order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// Zero-based claim sequence number — equals `start / morsel_rows`.
    /// Outputs merged in `seq` order reproduce the serial stream.
    pub seq: usize,
    /// First row (inclusive).
    pub start: usize,
    /// Last row (exclusive).
    pub end: usize,
}

impl Morsel {
    /// Number of rows in the morsel.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the morsel is empty (never produced by a source).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Hands out fixed-size row ranges of a scan via an atomic cursor.
///
/// The source is shape-agnostic: `total` may count table rows (for a
/// [`crate::TableScan`]) or index positions (for a [`crate::IndexScan`]).
#[derive(Debug)]
pub struct MorselSource {
    total: usize,
    morsel_rows: usize,
    cursor: AtomicUsize,
}

impl MorselSource {
    /// A source over `total` rows handing out morsels of `morsel_rows`
    /// (min 1; the final morsel may be short).
    pub fn new(total: usize, morsel_rows: usize) -> Self {
        Self {
            total,
            morsel_rows: morsel_rows.max(1),
            cursor: AtomicUsize::new(0),
        }
    }

    /// A source whose morsels span [`MORSEL_BATCHES`] batches of
    /// `batch_size` rows, so per-worker batch boundaries line up exactly
    /// with a serial batched scan.
    pub fn with_batch_size(total: usize, batch_size: usize) -> Self {
        Self::new(total, batch_size.max(1).saturating_mul(MORSEL_BATCHES))
    }

    /// Like [`MorselSource::with_batch_size`], but rounds the morsel size
    /// up to a multiple of `align` — paged scans align morsels to page
    /// boundaries so no two workers decode the same column page.
    pub fn with_batch_size_aligned(total: usize, batch_size: usize, align: usize) -> Self {
        let base = batch_size.max(1).saturating_mul(MORSEL_BATCHES);
        let align = align.max(1);
        Self::new(total, base.div_ceil(align).max(1).saturating_mul(align))
    }

    /// Claims the next morsel, or `None` when the scan is exhausted.
    pub fn claim(&self) -> Option<Morsel> {
        let start = self.cursor.fetch_add(self.morsel_rows, Ordering::Relaxed); // lint: relaxed-ok — the RMW hands out disjoint ranges; no ordering needed
        if start >= self.total {
            return None;
        }
        Some(Morsel {
            seq: start / self.morsel_rows,
            start,
            end: (start + self.morsel_rows).min(self.total),
        })
    }

    /// Rows per (full) morsel.
    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows
    }

    /// Total number of morsels the source will hand out.
    pub fn morsel_count(&self) -> usize {
        self.total.div_ceil(self.morsel_rows)
    }

    /// Total rows across all morsels.
    pub fn total_rows(&self) -> usize {
        self.total
    }
}

/// The result of a [`run_morsels`] sweep: per-morsel outputs in scan order
/// plus per-worker busy time.
#[derive(Debug)]
pub struct MorselRun<T> {
    /// One output per morsel, indexed by [`Morsel::seq`].
    pub outputs: Vec<T>,
    /// Wall-clock milliseconds each worker spent in its claim loop.
    pub worker_ms: Vec<f64>,
}

/// Runs `work` over every morsel of `source` on `workers` threads
/// (`std::thread::scope`; the calling thread doubles as worker 0, so
/// `workers == 1` spawns nothing and degenerates to a serial loop).
///
/// Outputs are returned **in morsel order**, independent of which worker
/// processed which morsel. On error, the sweep stops early and the error of
/// the lowest-numbered failing morsel is returned — the same error a serial
/// left-to-right run would have hit first.
pub fn run_morsels<T, F>(
    source: &MorselSource,
    workers: usize,
    work: F,
) -> Result<MorselRun<T>, StorageError>
where
    T: Send,
    F: Fn(Morsel) -> Result<T, StorageError> + Sync,
{
    run_morsels_guarded(source, workers, &QueryGuard::unlimited(), work)
}

/// [`run_morsels`] under a [`QueryGuard`]: every worker re-checks the guard
/// after claiming a morsel and before running it, so cancellation and
/// deadlines take effect at morsel granularity. A tripped guard is recorded
/// at that morsel's `seq`, and the earliest-morsel error rule then makes the
/// result deterministic: the same typed error a serial run would surface.
pub fn run_morsels_guarded<T, F>(
    source: &MorselSource,
    workers: usize,
    guard: &QueryGuard,
    work: F,
) -> Result<MorselRun<T>, StorageError>
where
    T: Send,
    F: Fn(Morsel) -> Result<T, StorageError> + Sync,
{
    let workers = workers.max(1).min(source.morsel_count().max(1));
    let slots: Vec<parking_lot::Mutex<Option<T>>> = (0..source.morsel_count())
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    let failure: parking_lot::Mutex<Option<(usize, StorageError)>> = parking_lot::Mutex::new(None);
    let abort = AtomicBool::new(false);
    let timings: Vec<parking_lot::Mutex<f64>> =
        (0..workers).map(|_| parking_lot::Mutex::new(0.0)).collect();

    let worker_loop = |w: usize| {
        let started = Instant::now(); // lint: nondet-ok — per-worker busy-time telemetry; merged outputs stay in morsel order
                                      // Acquire pairs with the Release store below: a worker that sees
                                      // the abort also sees the failure recorded before it.
        while !abort.load(Ordering::Acquire) {
            let Some(morsel) = source.claim() else {
                break;
            };
            match guard.check().and_then(|()| work(morsel)) {
                Ok(out) => *slots[morsel.seq].lock() = Some(out),
                Err(e) => {
                    let mut slot = failure.lock();
                    // Keep the error of the earliest morsel: that is the one
                    // a serial run would have surfaced.
                    if slot.as_ref().is_none_or(|(seq, _)| morsel.seq < *seq) {
                        *slot = Some((morsel.seq, e));
                    }
                    abort.store(true, Ordering::Release);
                }
            }
        }
        *timings[w].lock() = started.elapsed().as_secs_f64() * 1000.0;
    };

    if workers == 1 {
        worker_loop(0);
    } else {
        std::thread::scope(|scope| {
            for w in 1..workers {
                let worker_loop = &worker_loop;
                scope.spawn(move || worker_loop(w));
            }
            worker_loop(0);
        });
    }

    if let Some((_, e)) = failure.into_inner() {
        return Err(e);
    }
    let outputs = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every morsel ran to completion"))
        .collect();
    Ok(MorselRun {
        outputs,
        worker_ms: timings.into_iter().map(|t| t.into_inner()).collect(),
    })
}

/// The degree of parallelism the host offers (≥ 1). Callers cap their
/// worker counts here; the cost model uses it as the ceiling for its
/// degree-of-parallelism choice.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_tile_the_input_exactly() {
        let src = MorselSource::new(10, 4);
        assert_eq!(src.morsel_count(), 3);
        let m0 = src.claim().unwrap();
        let m1 = src.claim().unwrap();
        let m2 = src.claim().unwrap();
        assert_eq!((m0.start, m0.end, m0.seq), (0, 4, 0));
        assert_eq!((m1.start, m1.end, m1.seq), (4, 8, 1));
        assert_eq!((m2.start, m2.end, m2.seq), (8, 10, 2));
        assert_eq!(m2.len(), 2);
        assert!(src.claim().is_none());
        assert!(src.claim().is_none()); // stays exhausted
    }

    #[test]
    fn empty_source_hands_out_nothing() {
        let src = MorselSource::new(0, 4);
        assert_eq!(src.morsel_count(), 0);
        assert!(src.claim().is_none());
    }

    #[test]
    fn batch_aligned_source_spans_morsel_batches() {
        let src = MorselSource::with_batch_size(10_000, 1024);
        assert_eq!(src.morsel_rows(), 1024 * MORSEL_BATCHES);
    }

    #[test]
    fn run_morsels_preserves_scan_order_at_any_worker_count() {
        let src_rows = 999usize;
        for workers in [1usize, 2, 8] {
            let src = MorselSource::new(src_rows, 64);
            let run =
                run_morsels(&src, workers, |m| Ok((m.start..m.end).collect::<Vec<_>>())).unwrap();
            let flat: Vec<usize> = run.outputs.into_iter().flatten().collect();
            assert_eq!(flat, (0..src_rows).collect::<Vec<_>>(), "workers {workers}");
            assert!(!run.worker_ms.is_empty());
        }
    }

    #[test]
    fn run_morsels_reports_the_earliest_error() {
        let src = MorselSource::new(100, 10);
        let err = run_morsels(&src, 4, |m| {
            if m.seq >= 3 {
                Err(StorageError::Eval(format!("boom at {}", m.seq)))
            } else {
                Ok(m.seq)
            }
        })
        .unwrap_err();
        // Workers may hit seq 4..9 first, but the reported error must be the
        // earliest failing morsel a serial run would have reached.
        assert!(
            matches!(&err, StorageError::Eval(m) if m == "boom at 3"),
            "{err:?}"
        );
    }

    #[test]
    fn host_parallelism_is_at_least_one() {
        assert!(host_parallelism() >= 1);
    }

    #[test]
    fn guarded_run_cancels_deterministically() {
        use std::time::Duration;
        // A 0ms deadline trips on the very first claimed morsel, and the
        // earliest-morsel rule pins the reported error to seq 0 regardless
        // of worker count or scheduling.
        for workers in [1usize, 4] {
            let src = MorselSource::new(1000, 10);
            let guard = QueryGuard::unlimited().with_timeout(Duration::ZERO);
            let err = run_morsels_guarded(&src, workers, &guard, Ok).unwrap_err();
            assert!(matches!(err, StorageError::Cancelled(_)), "{err:?}");
        }
        // An untripped guard changes nothing.
        let src = MorselSource::new(100, 10);
        let run = run_morsels_guarded(&src, 4, &QueryGuard::unlimited(), |m| Ok(m.seq)).unwrap();
        assert_eq!(run.outputs, (0..10).collect::<Vec<_>>());
    }
}
