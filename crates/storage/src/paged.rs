//! Page-backed tables: the out-of-core representation behind [`Table`].
//!
//! A [`PagedTable`] holds one compressed page per (column, row group)
//! instead of resident rows. Pages live either in memory ([`PageBacking::Mem`],
//! freshly encoded and not yet checkpointed — the *dirty* state) or on disk
//! ([`PageBacking::File`], durable and content-addressed). Decoded pages are
//! cached in the shared [`BufferPool`]; dropping a paged table evicts its
//! pages. Checkpoints call [`PagedTable::write_durable`], which writes only
//! pages whose content-addressed file does not already exist — that is the
//! whole incremental-checkpoint mechanism: unchanged pages are recognized by
//! name (`{crc32}{fnv1a64}.kpg`) and skipped.

use crate::io::{with_retry, Io, RetryPolicy};
use crate::page::{decode_page, encode_page, ZoneMap};
use crate::pool::{BufferPool, PageKey};
use crate::wal::crc32;
use crate::{ColumnVector, Row, Schema, StorageError, Value};
use bytes::Bytes;
use parking_lot::RwLock;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_TABLE_ID: AtomicU64 = AtomicU64::new(1);

/// FNV-1a 64-bit hash; paired with CRC32 to content-address page files.
fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Where one page's encoded bytes live right now.
#[derive(Debug, Clone)]
pub enum PageBacking {
    /// Encoded in memory, not yet checkpointed (dirty).
    Mem(Bytes),
    /// Durable in a content-addressed `.kpg` file.
    File(PathBuf),
}

/// One compressed column page plus the metadata needed to find, verify,
/// and prune it without decoding.
#[derive(Debug)]
pub struct PageSlot {
    zone: ZoneMap,
    rows: u32,
    len: u32,
    crc: u32,
    fnv: u64,
    backing: RwLock<PageBacking>,
}

impl PageSlot {
    fn from_bytes(bytes: Bytes, zone: ZoneMap) -> Self {
        let crc = crc32(&bytes);
        let fnv = fnv1a64(&bytes);
        Self {
            rows: zone.rows,
            len: bytes.len() as u32,
            crc,
            fnv,
            zone,
            backing: RwLock::new(PageBacking::Mem(bytes)),
        }
    }

    /// The content-addressed durable file name of this page.
    pub fn file_name(&self) -> String {
        format!("{:08x}{:016x}.kpg", self.crc, self.fnv)
    }

    /// Zone map of the page.
    pub fn zone(&self) -> &ZoneMap {
        &self.zone
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.len as usize
    }

    /// Rows in the page.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// CRC32 of the encoded page bytes.
    pub fn crc(&self) -> u32 {
        self.crc
    }

    /// FNV-1a 64 of the encoded page bytes.
    pub fn fnv(&self) -> u64 {
        self.fnv
    }

    /// Whether the page is only in memory (not yet written durably).
    pub fn is_dirty(&self) -> bool {
        matches!(*self.backing.read(), PageBacking::Mem(_))
    }

    fn encoded_bytes(&self, io: &Io) -> Result<Bytes, StorageError> {
        let backing = self.backing.read();
        match &*backing {
            PageBacking::Mem(bytes) => Ok(bytes.clone()),
            PageBacking::File(path) => {
                // One retry on a transient read failure; anything that
                // persists surfaces as a typed `Io`, and bytes that arrive
                // but do not match the descriptor are `Corrupt`. Never a
                // panic, never a wrong page.
                let retry = RetryPolicy {
                    attempts: 2,
                    ..RetryPolicy::default()
                };
                let data = with_retry(&retry, || io.read(path))?;
                if crc32(&data) != self.crc || data.len() != self.len as usize {
                    return Err(StorageError::Corrupt(format!(
                        "page file {} does not match its descriptor",
                        path.display()
                    )));
                }
                Ok(Bytes::from(data))
            }
        }
    }
}

/// Metadata for one durable page, as read back from checkpoint metadata.
#[derive(Debug, Clone)]
pub struct RecoveredPage {
    /// Path of the content-addressed `.kpg` file.
    pub path: PathBuf,
    /// Encoded length in bytes.
    pub len: u32,
    /// CRC32 of the encoded bytes.
    pub crc: u32,
    /// FNV-1a 64 of the encoded bytes.
    pub fnv: u64,
    /// Zone map of the page.
    pub zone: ZoneMap,
}

/// Outcome of one [`PagedTable::write_durable`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageWriteStats {
    /// Pages newly written this checkpoint.
    pub pages_written: usize,
    /// Pages whose content-addressed file already existed (clean pages).
    pub pages_reused: usize,
    /// Bytes written this checkpoint (dirty pages only).
    pub bytes_written: u64,
    /// Total encoded bytes referenced by the table (written + reused).
    pub bytes_total: u64,
}

/// A table stored as fixed-size compressed column pages, read through the
/// shared buffer pool.
#[derive(Debug)]
pub struct PagedTable {
    id: u64,
    schema: Schema,
    rows: usize,
    page_rows: usize,
    // columns[c][p] = page p of column c.
    columns: Vec<Vec<PageSlot>>,
    pool: Arc<BufferPool>,
}

impl PagedTable {
    /// Pages `rows` under `schema` into compressed column pages of
    /// `page_rows` rows each.
    pub fn from_rows(
        schema: Schema,
        rows: &[Row],
        pool: Arc<BufferPool>,
        page_rows: usize,
    ) -> Result<Self, StorageError> {
        let page_rows = page_rows.max(1);
        let ncols = schema.columns().len();
        let page_count = rows.len().div_ceil(page_rows);
        let mut columns: Vec<Vec<PageSlot>> =
            (0..ncols).map(|_| Vec::with_capacity(page_count)).collect();
        let mut scratch: Vec<Value> = Vec::with_capacity(page_rows);
        for p in 0..page_count {
            let start = p * page_rows;
            let end = (start + page_rows).min(rows.len());
            for (c, slots) in columns.iter_mut().enumerate() {
                scratch.clear();
                scratch.extend(rows[start..end].iter().map(|r| r[c].clone()));
                let (bytes, zone) = encode_page(&scratch)?;
                slots.push(PageSlot::from_bytes(bytes, zone));
            }
        }
        Ok(Self {
            id: NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed), // lint: relaxed-ok — unique-ID tick; the RMW alone guarantees uniqueness
            schema,
            rows: rows.len(),
            page_rows,
            columns,
            pool,
        })
    }

    /// Rebuilds a paged table from checkpoint metadata; pages stay on disk
    /// until first touch, so recovery is O(metadata), not O(data).
    pub fn from_recovered(
        schema: Schema,
        rows: usize,
        page_rows: usize,
        columns: Vec<Vec<RecoveredPage>>,
        pool: Arc<BufferPool>,
    ) -> Result<Self, StorageError> {
        let page_rows = page_rows.max(1);
        let expect_pages = rows.div_ceil(page_rows);
        if columns.len() != schema.columns().len()
            || columns.iter().any(|c| c.len() != expect_pages)
        {
            return Err(StorageError::Corrupt(
                "checkpoint page layout does not match table shape".into(),
            ));
        }
        let columns = columns
            .into_iter()
            .map(|slots| {
                slots
                    .into_iter()
                    .map(|r| PageSlot {
                        rows: r.zone.rows,
                        len: r.len,
                        crc: r.crc,
                        fnv: r.fnv,
                        zone: r.zone,
                        backing: RwLock::new(PageBacking::File(r.path)),
                    })
                    .collect()
            })
            .collect();
        Ok(Self {
            id: NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed), // lint: relaxed-ok — unique-ID tick; the RMW alone guarantees uniqueness
            schema,
            rows,
            page_rows,
            columns,
            pool,
        })
    }

    /// Process-unique table id (the buffer-pool namespace).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total rows across all pages.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Rows per page.
    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    /// Pages per column.
    pub fn page_count(&self) -> usize {
        self.rows.div_ceil(self.page_rows)
    }

    /// The shared buffer pool this table reads through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Row range `[start, end)` of page `p`.
    pub fn page_bounds(&self, p: usize) -> (usize, usize) {
        let start = p * self.page_rows;
        (start, (start + self.page_rows).min(self.rows))
    }

    /// Zone map of page `p` of column `c`.
    pub fn zone(&self, c: usize, p: usize) -> &ZoneMap {
        self.columns[c][p].zone()
    }

    /// The page slot for column `c`, page `p`.
    pub fn slot(&self, c: usize, p: usize) -> &PageSlot {
        &self.columns[c][p]
    }

    /// Sum of encoded page sizes in bytes.
    pub fn encoded_bytes(&self) -> u64 {
        self.columns.iter().flatten().map(|s| s.len as u64).sum()
    }

    /// Pages held only in memory (dirty: not yet written durably).
    pub fn dirty_pages(&self) -> usize {
        self.columns
            .iter()
            .flatten()
            .filter(|s| s.is_dirty())
            .count()
    }

    /// Records that the scan skipped a page via its zone map.
    pub fn note_zone_skip(&self) {
        self.pool.note_zone_skip();
    }

    /// The decoded page `p` of column `c`, via the buffer pool.
    pub fn column_page(&self, c: usize, p: usize) -> Result<Arc<ColumnVector>, StorageError> {
        let slot = &self.columns[c][p];
        let key = PageKey {
            table: self.id,
            column: c as u32,
            page: p as u32,
        };
        self.pool.get_or_load(key, || {
            let bytes = slot.encoded_bytes(self.pool.io())?;
            Ok(Arc::new(decode_page(&bytes)?))
        })
    }

    /// The row at position `i`, or `None` past the end. Touches one page
    /// per column through the pool.
    pub fn row_at(&self, i: usize) -> Result<Option<Row>, StorageError> {
        if i >= self.rows {
            return Ok(None);
        }
        let p = i / self.page_rows;
        let off = i - p * self.page_rows;
        let mut row = Vec::with_capacity(self.columns.len());
        for c in 0..self.columns.len() {
            row.push(self.column_page(c, p)?.value(off));
        }
        Ok(Some(row))
    }

    /// Decodes every page back into resident rows (page by page, so peak
    /// extra memory beyond the output is one row group).
    pub fn materialize(&self) -> Result<Vec<Row>, StorageError> {
        let mut rows: Vec<Row> = Vec::with_capacity(self.rows);
        for p in 0..self.page_count() {
            let (start, end) = self.page_bounds(p);
            let cols: Vec<Arc<ColumnVector>> = (0..self.columns.len())
                .map(|c| self.column_page(c, p))
                .collect::<Result<_, _>>()?;
            for off in 0..end - start {
                rows.push(cols.iter().map(|col| col.value(off)).collect());
            }
        }
        Ok(rows)
    }

    /// Streams one column's values as `(row position, value)` without
    /// materializing rows — the index builders' access path.
    pub fn for_each_in_column<F>(&self, c: usize, mut f: F) -> Result<(), StorageError>
    where
        F: FnMut(usize, &Value) -> Result<(), StorageError>,
    {
        for p in 0..self.page_count() {
            let (start, end) = self.page_bounds(p);
            let col = self.column_page(c, p)?;
            for off in 0..end - start {
                f(start + off, &col.value(off))?;
            }
        }
        Ok(())
    }

    /// Writes every dirty page into `pages_dir` under its content-addressed
    /// name, fsynced, and flips its backing to [`PageBacking::File`]. Pages
    /// whose file already exists (identical content from an earlier
    /// checkpoint) are skipped — this is what makes checkpoints incremental.
    pub fn write_durable(&self, pages_dir: &Path) -> Result<PageWriteStats, StorageError> {
        let io = self.pool.io().clone();
        let mut stats = PageWriteStats::default();
        for slots in &self.columns {
            for slot in slots {
                stats.bytes_total += slot.len as u64;
                let path = pages_dir.join(slot.file_name());
                if io.exists(&path) {
                    stats.pages_reused += 1;
                } else {
                    let bytes = slot.encoded_bytes(&io)?;
                    crate::persist::atomic_write_with(&io, &path, &bytes)?;
                    stats.pages_written += 1;
                    stats.bytes_written += slot.len as u64;
                }
                let mut backing = slot.backing.write();
                if matches!(*backing, PageBacking::Mem(_)) {
                    *backing = PageBacking::File(path);
                }
            }
        }
        Ok(stats)
    }
}

impl Drop for PagedTable {
    fn drop(&mut self) {
        self.pool.evict_table(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, Schema};

    fn schema() -> Schema {
        Schema::of(&[("id", DataType::Int), ("tag", DataType::Str)])
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                vec![
                    Value::Int(i as i64),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Str(format!("tag{}", i % 3))
                    },
                ]
            })
            .collect()
    }

    #[test]
    fn round_trips_through_pages() {
        let pool = Arc::new(BufferPool::with_budget(64));
        let data = rows(1000);
        let pt = PagedTable::from_rows(schema(), &data, pool, 128).unwrap();
        assert_eq!(pt.len(), 1000);
        assert_eq!(pt.page_count(), 8);
        assert_eq!(pt.materialize().unwrap(), data);
        assert_eq!(pt.row_at(999).unwrap().unwrap(), data[999]);
        assert_eq!(pt.row_at(1000).unwrap(), None);
    }

    #[test]
    fn identical_under_tiny_pool() {
        let pool = Arc::new(BufferPool::with_budget(1));
        let data = rows(500);
        let pt = PagedTable::from_rows(schema(), &data, Arc::clone(&pool), 64).unwrap();
        assert_eq!(pt.materialize().unwrap(), data);
        assert!(pool.status().evictions > 0);
    }

    #[test]
    fn drop_evicts_pool_entries() {
        let pool = Arc::new(BufferPool::with_budget(64));
        let data = rows(100);
        let pt = PagedTable::from_rows(schema(), &data, Arc::clone(&pool), 32).unwrap();
        pt.materialize().unwrap();
        assert!(pool.status().resident_pages > 0);
        drop(pt);
        assert_eq!(pool.status().resident_pages, 0);
    }

    #[test]
    fn write_durable_is_incremental() {
        let dir = tempdir();
        let pool = Arc::new(BufferPool::with_budget(64));
        let data = rows(256);
        let pt = PagedTable::from_rows(schema(), &data, Arc::clone(&pool), 64).unwrap();
        assert_eq!(pt.dirty_pages(), pt.page_count() * 2);
        let first = pt.write_durable(&dir).unwrap();
        assert_eq!(first.pages_written, pt.page_count() * 2);
        assert_eq!(first.pages_reused, 0);
        assert_eq!(pt.dirty_pages(), 0);
        // Re-paging identical content reuses every file.
        let pt2 = PagedTable::from_rows(schema(), &data, Arc::clone(&pool), 64).unwrap();
        let second = pt2.write_durable(&dir).unwrap();
        assert_eq!(second.pages_written, 0);
        assert_eq!(second.pages_reused, pt.page_count() * 2);
        assert_eq!(second.bytes_written, 0);
        // One appended row dirties only the last page of each column.
        let mut more = data.clone();
        more.push(vec![Value::Int(256), Value::Str("tag0".into())]);
        let pt3 = PagedTable::from_rows(schema(), &more, Arc::clone(&pool), 64).unwrap();
        let third = pt3.write_durable(&dir).unwrap();
        assert_eq!(third.pages_written, 2); // last page of each of 2 columns
        assert!(third.bytes_written < first.bytes_written);
        // File-backed pages still materialize correctly.
        assert_eq!(pt3.materialize().unwrap(), more);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovered_tables_read_lazily() {
        let dir = tempdir();
        let pool = Arc::new(BufferPool::with_budget(64));
        let data = rows(200);
        let pt = PagedTable::from_rows(schema(), &data, Arc::clone(&pool), 64).unwrap();
        pt.write_durable(&dir).unwrap();
        let recovered: Vec<Vec<RecoveredPage>> = (0..2)
            .map(|c| {
                (0..pt.page_count())
                    .map(|p| {
                        let s = pt.slot(c, p);
                        RecoveredPage {
                            path: dir.join(s.file_name()),
                            len: s.encoded_len() as u32,
                            crc: s.crc(),
                            fnv: s.fnv(),
                            zone: s.zone().clone(),
                        }
                    })
                    .collect()
            })
            .collect();
        let back =
            PagedTable::from_recovered(schema(), 200, 64, recovered, Arc::clone(&pool)).unwrap();
        assert_eq!(back.dirty_pages(), 0);
        assert_eq!(back.materialize().unwrap(), data);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn page_reads_retry_once_then_surface_typed_errors() {
        use crate::{FaultKind, FaultPlan, IoOp};
        let dir = tempdir();
        let io = Io::real();
        let pool = Arc::new(BufferPool::with_budget_io(1, io.clone()));
        let data = rows(200);
        let pt = PagedTable::from_rows(schema(), &data, Arc::clone(&pool), 64).unwrap();
        pt.write_durable(&dir).unwrap();
        // A transient read fault is retried once and hidden from the scan
        // (budget 1 forces a disk read per page).
        io.install_faults(FaultPlan::at(1, FaultKind::Transient).on_ops(&[IoOp::Read]));
        assert_eq!(pt.materialize().unwrap(), data);
        // A persistent read fault surfaces as Io — never a panic or a
        // wrong batch.
        io.install_faults(FaultPlan::probabilistic(1, 1.0).with_kinds(&[FaultKind::Permanent]));
        assert!(matches!(pt.materialize().unwrap_err(), StorageError::Io(_)));
        io.clear_faults();
        assert_eq!(pt.materialize().unwrap(), data);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shape_mismatch_is_corrupt() {
        let pool = Arc::new(BufferPool::with_budget(4));
        let err = PagedTable::from_recovered(schema(), 10, 4, vec![], pool).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "kathdb-paged-test-{}-{}",
            std::process::id(),
            NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
