//! KathDB relational substrate.
//!
//! The paper's central design decision is a "unified semantic layer based on
//! the relational model" (§1): every modality — tables, text, images, video —
//! is represented as relational views, and every FAO ultimately reads and
//! writes tables. This crate is that relational foundation: typed values,
//! schemas, in-memory tables, scalar expressions, volcano-style operators,
//! secondary indexes, statistics, a system catalog (with the verifier's
//! database utilities), binary persistence, and the durability subsystem
//! (write-ahead log + checkpointed snapshots + crash recovery).

#![warn(missing_docs)]

mod batch;
mod catalog;
mod compile;
mod durable;
mod error;
mod expr;
mod guard;
mod index;
mod io;
mod morsel;
mod ops;
mod page;
mod paged;
mod persist;
mod pool;
mod schema;
mod stats;
mod table;
mod txn;
mod value;
mod vecindex;
mod wal;

pub use batch::{ColumnData, ColumnVector, ExecMode, NullBitmap, RowBatch, DEFAULT_BATCH_SIZE};
pub use catalog::{Catalog, Joinability};
pub use compile::{
    compile_pays_off, CompileMode, CompiledExpr, CompiledPipeline, COMPILE_BREAK_EVEN_ROWS,
    COMPILE_ENV,
};
pub use durable::{CheckpointStats, Durability, DurabilityStatus, Recovered};
pub use error::StorageError;
pub use expr::{BinOp, Expr};
pub use guard::{
    batch_footprint, row_footprint, value_footprint, CancelToken, GuardSpec, QueryGuard,
    GUARD_CHECK_INTERVAL,
};
pub use index::{HashIndex, SortedIndex};
pub use io::{
    is_transient, with_retry, FaultKind, FaultPlan, FaultStats, FaultyIo, Io, IoBackend, IoOp,
    RealIo, RetryPolicy, FAULTS_ENV,
};
pub use morsel::{
    host_parallelism, run_morsels, run_morsels_guarded, Morsel, MorselRun, MorselSource,
    MORSEL_BATCHES,
};
pub use ops::{
    cmp_rows, col_cmp, collect, collect_batched, collect_batched_guarded, collect_guarded,
    merge_sorted_runs, resolve_sort_keys, sort_rows, AggFunc, Aggregate, Distinct, Filter,
    HashAggregate, HashJoin, IndexScan, JoinBuild, JoinKind, Limit, NestedLoopJoin, Operator,
    PartialAggregate, Project, Sort, SortKey, TableScan, UnionAll,
};
pub use page::{decode_page, encode_page, page_encoding_name, ZoneMap, DEFAULT_PAGE_ROWS};
pub use paged::{PageBacking, PageSlot, PageWriteStats, PagedTable, RecoveredPage};
pub use persist::{
    atomic_write, atomic_write_with, decode_table, encode_table, load_table, load_table_with,
    save_table, save_table_with,
};
pub use pool::{BufferPool, PageKey, PoolStatus, DEFAULT_POOL_PAGES, POOL_PAGES_ENV};
pub use schema::{Column, Schema};
pub use stats::{ColumnStats, TableStats};
pub use table::Table;
pub use txn::{CatalogRef, SharedCatalog};
pub use value::{cmp_int_f64, DataType, Row, Value};
pub use vecindex::{
    decode_embedding, default_nlist, default_nprobe, encode_embedding, merge_top_k,
    preferred_vector_strategy, top_k_entries, vector_search_cost, VectorIndex, VectorMode,
    VectorStrategy, VectorTopK, IVF_FIXED_COST, VECTOR_INDEX_SEED,
};
pub use wal::{crc32, filter_committed, FilteredLog, Wal, WalRecord};
