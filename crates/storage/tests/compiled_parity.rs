//! Property tests: the fused compiled pipeline drive is observationally
//! identical to interpreted execution, at every batch size and worker
//! count.
//!
//! For random NULL-heavy tables (sometimes empty) and random
//! SQL-expressible plans — projections (bare `*`, column subsets, computed
//! expressions), WHERE trees over AND/OR/NOT/IS NULL with mixed-type
//! comparisons, optional equi-joins — the compiled drive
//! (`run_select_auto` with [`CompileMode::On`]) must produce the same
//! table, row for row and byte for byte, as the interpreted drive
//! ([`CompileMode::Off`]) — or both must fail. The sweep covers batch
//! sizes 1/3/1024 and 1/2/8 workers over both resident and paged tables
//! (so the CI low-memory leg exercises a starved buffer pool underneath),
//! and plans the compiler cannot express (aggregates, DISTINCT, ORDER BY,
//! LIMIT) must report `compiled == false` while still agreeing on rows.

use kath_sql::{parse_select, run_select_auto};
use kath_storage::{
    Catalog, Column, CompileMode, DataType, ExecMode, Schema, Table, Value, VectorMode,
};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy, PartialEq)]
enum ColType {
    Int,
    Float,
    Str,
    Bool,
}

/// A cell seed: nullness roll plus a small payload (small domains collide).
type CellSeed = (u8, i64);
/// One generated row: a seed per potential column.
type RowSeed = (CellSeed, CellSeed, CellSeed, CellSeed);

fn cell(t: ColType, (roll, k): CellSeed) -> Value {
    if roll % 3 == 0 {
        // NULL-heavy: about a third of all cells.
        return Value::Null;
    }
    match t {
        ColType::Int => Value::Int(k),
        ColType::Float => Value::Float(k as f64 * 0.5),
        ColType::Str => Value::Str(format!("s{k}")),
        ColType::Bool => Value::Bool(k % 2 == 0),
    }
}

fn dtype(t: ColType) -> DataType {
    match t {
        ColType::Int => DataType::Int,
        ColType::Float => DataType::Float,
        ColType::Str => DataType::Str,
        ColType::Bool => DataType::Bool,
    }
}

fn build_table(name: &str, prefix: char, types: &[ColType], rows: &[RowSeed]) -> Table {
    let schema = Schema::new(
        types
            .iter()
            .enumerate()
            .map(|(i, t)| Column::new(format!("{prefix}{i}"), dtype(*t)))
            .collect(),
    )
    .expect("generated names are unique");
    let mut table = Table::new(name, schema);
    for seed in rows {
        let seeds = [seed.0, seed.1, seed.2, seed.3];
        let row: Vec<Value> = types.iter().zip(seeds).map(|(t, s)| cell(*t, s)).collect();
        table.push(row).expect("cells match their column types");
    }
    table
}

/// One comparison leaf of the WHERE tree, rendered as SQL text.
#[derive(Debug, Clone)]
struct CmpSpec {
    col: u8,
    cmp: u8,
    lit: i64,
}

impl CmpSpec {
    fn render(&self, arity: usize, prefix: char) -> String {
        let op = ["=", "<>", "<", "<=", ">", ">="][self.cmp as usize % 6];
        let col = self.col as usize % arity;
        if self.cmp % 7 == 6 {
            // An occasional IS NULL leaf exercises the 3VL kernels.
            format!("{prefix}{col} IS NULL")
        } else {
            format!("{prefix}{col} {op} {}", self.lit)
        }
    }
}

/// The WHERE tree: up to two comparison leaves under AND/OR, optionally
/// negated — the short-circuit shapes the compiler fuses.
#[derive(Debug, Clone)]
struct FilterSpec {
    first: CmpSpec,
    second: Option<(bool, CmpSpec)>,
    negate: bool,
}

impl FilterSpec {
    fn render(&self, arity: usize, prefix: char) -> String {
        let mut body = self.first.render(arity, prefix);
        if let Some((or, second)) = &self.second {
            let conn = if *or { "OR" } else { "AND" };
            body = format!("{body} {conn} {}", second.render(arity, prefix));
        }
        if self.negate {
            format!("NOT ({body})")
        } else {
            format!("({body})")
        }
    }
}

/// The SELECT list: bare `*`, a column subset, or computed expressions.
#[derive(Debug, Clone)]
enum Items {
    Star,
    Cols(u8),
    Computed(u8),
}

impl Items {
    fn render(&self, arity: usize, prefix: char) -> String {
        match self {
            Items::Star => "*".to_string(),
            Items::Cols(keep) => {
                let mask = (*keep as usize % ((1 << arity) - 1)) + 1;
                let cols: Vec<String> = (0..arity)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| format!("{prefix}{i}"))
                    .collect();
                cols.join(", ")
            }
            Items::Computed(c) => {
                let col = *c as usize % arity;
                format!(
                    "{prefix}{col}, {prefix}{col} + 1 AS bumped, {prefix}{col} IS NULL AS missing"
                )
            }
        }
    }
}

/// A plan shape the compiler must decline: parity still holds, but the
/// stats must report the interpreted fallback.
#[derive(Debug, Clone, Copy)]
enum Fallback {
    Limit,
    Distinct,
    OrderBy,
    Aggregate,
}

fn arb_type() -> impl Strategy<Value = ColType> {
    prop_oneof![
        Just(ColType::Int),
        Just(ColType::Float),
        Just(ColType::Str),
        Just(ColType::Bool),
    ]
}

fn arb_row_seed() -> impl Strategy<Value = RowSeed> {
    let c = || (any::<u8>(), -4i64..5);
    (c(), c(), c(), c())
}

fn arb_cmp() -> impl Strategy<Value = CmpSpec> {
    (any::<u8>(), any::<u8>(), -4i64..5).prop_map(|(col, cmp, lit)| CmpSpec { col, cmp, lit })
}

fn arb_filter() -> impl Strategy<Value = Option<FilterSpec>> {
    prop::option::of(
        (
            arb_cmp(),
            prop::option::of((any::<bool>(), arb_cmp())),
            any::<bool>(),
        )
            .prop_map(|(first, second, negate)| FilterSpec {
                first,
                second,
                negate,
            }),
    )
}

fn arb_items() -> impl Strategy<Value = Items> {
    prop_oneof![
        Just(Items::Star),
        any::<u8>().prop_map(Items::Cols),
        any::<u8>().prop_map(Items::Computed),
    ]
}

fn arb_fallback() -> impl Strategy<Value = Fallback> {
    prop_oneof![
        Just(Fallback::Limit),
        Just(Fallback::Distinct),
        Just(Fallback::OrderBy),
        Just(Fallback::Aggregate),
    ]
}

fn render_query(items: &Items, filt: &Option<FilterSpec>, join: bool, arity: usize) -> String {
    let mut sql = format!("SELECT {} FROM t1", items.render(arity, 'c'));
    if join {
        sql.push_str(" JOIN t2 ON t1.c0 = t2.d0");
    }
    if let Some(f) = filt {
        sql.push_str(&format!(" WHERE {}", f.render(arity, 'c')));
    }
    sql
}

/// Registers `t1` (and `t2` when joining) resident, and paged clones in a
/// second catalog so the same query sweeps both backings.
fn catalogs(t1: &Table, t2: &Table, join: bool) -> (Catalog, Catalog) {
    let mut resident = Catalog::new();
    resident.register(t1.clone()).expect("fresh catalog");
    let mut paged = Catalog::new();
    let pool = std::sync::Arc::clone(paged.pool());
    paged
        .register(t1.to_paged(&pool, 7).expect("pages encode"))
        .expect("fresh catalog");
    if join {
        resident.register(t2.clone()).expect("fresh name");
        paged
            .register(t2.to_paged(&pool, 7).expect("pages encode"))
            .expect("fresh name");
    }
    (resident, paged)
}

/// Runs one query in one catalog under the given knobs.
fn run(
    catalog: &Catalog,
    sql: &str,
    batch: usize,
    threads: usize,
    compile: CompileMode,
) -> Result<(Table, bool), kath_sql::SqlError> {
    let select = parse_select(sql).expect("generated SQL parses");
    run_select_auto(
        catalog,
        &select,
        "out",
        ExecMode::Batched(batch),
        threads,
        VectorMode::Off,
        compile,
    )
    .map(|(t, stats)| (t, stats.compiled))
}

/// Asserts compiled == interpreted over the full (batch, threads, backing)
/// sweep for one query, returning whether any run actually compiled.
fn assert_parity(resident: &Catalog, paged: &Catalog, sql: &str) -> Result<bool, TestCaseError> {
    // The canonical reference: serial interpreted execution at the default
    // batch size on the resident table.
    let reference = run(resident, sql, 1024, 1, CompileMode::Off);
    let mut any_compiled = false;
    for (label, catalog) in [("resident", resident), ("paged", paged)] {
        for batch in [1usize, 3, 1024] {
            for threads in [1usize, 2, 8] {
                let compiled = run(catalog, sql, batch, threads, CompileMode::On);
                let interp = run(catalog, sql, batch, threads, CompileMode::Off);
                match (&reference, &compiled, &interp) {
                    (Ok((want, _)), Ok((got_c, was_compiled)), Ok((got_i, _))) => {
                        prop_assert_eq!(
                            want,
                            got_c,
                            "compiled diverged ({label}, batch {}, {} workers): {}",
                            batch,
                            threads,
                            sql
                        );
                        prop_assert_eq!(
                            want,
                            got_i,
                            "interpreted diverged ({label}, batch {}, {} workers): {}",
                            batch,
                            threads,
                            sql
                        );
                        any_compiled |= was_compiled;
                    }
                    // A plan that fails (e.g. `+ 1` over a Bool column) must
                    // fail on every drive.
                    (Err(_), Err(_), Err(_)) => {}
                    (r, c, i) => prop_assert!(
                        false,
                        "drives disagreed on failure ({label}, batch {batch}, {threads} workers) \
                         for {sql}: reference={:?} compiled={:?} interpreted={:?}",
                        r.is_ok(),
                        c.is_ok(),
                        i.is_ok()
                    ),
                }
            }
        }
    }
    Ok(any_compiled)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_matches_interpreted_for_random_plans(
        types in (arb_type(), arb_type(), arb_type(), arb_type()),
        arity in 1usize..5,
        rows in prop::collection::vec(arb_row_seed(), 0..48),
        rows2 in prop::collection::vec(arb_row_seed(), 0..16),
        items in arb_items(),
        filt in arb_filter(),
        join in any::<bool>(),
    ) {
        let types = [types.0, types.1, types.2, types.3];
        let t1 = build_table("t1", 'c', &types[..arity], &rows);
        let t2 = build_table("t2", 'd', &types[..arity], &rows2);
        let sql = render_query(&items, &filt, join, arity);
        let (resident, paged) = catalogs(&t1, &t2, join);
        assert_parity(&resident, &paged, &sql)?;
    }

    #[test]
    fn compiled_matches_interpreted_on_all_null_tables(
        types in (arb_type(), arb_type(), arb_type(), arb_type()),
        arity in 1usize..5,
        n_rows in 0usize..6,
        items in arb_items(),
        filt in arb_filter(),
    ) {
        let types = [types.0, types.1, types.2, types.3];
        // Roll 0 forces NULL in every cell.
        let rows: Vec<RowSeed> = vec![((0, 0), (0, 0), (0, 0), (0, 0)); n_rows];
        let t1 = build_table("t1", 'c', &types[..arity], &rows);
        let t2 = build_table("t2", 'd', &types[..arity], &rows);
        let sql = render_query(&items, &filt, false, arity);
        let (resident, paged) = catalogs(&t1, &t2, false);
        assert_parity(&resident, &paged, &sql)?;
    }

    #[test]
    fn uncompilable_plans_fall_back_and_still_agree(
        types in (arb_type(), arb_type(), arb_type(), arb_type()),
        arity in 1usize..5,
        rows in prop::collection::vec(arb_row_seed(), 0..32),
        filt in arb_filter(),
        fallback in arb_fallback(),
    ) {
        let types = [types.0, types.1, types.2, types.3];
        let t1 = build_table("t1", 'c', &types[..arity], &rows);
        let t2 = build_table("t2", 'd', &types[..arity], &rows);
        let where_sql = filt
            .as_ref()
            .map(|f| format!(" WHERE {}", f.render(arity, 'c')))
            .unwrap_or_default();
        let sql = match fallback {
            Fallback::Limit => format!("SELECT * FROM t1{where_sql} LIMIT 3"),
            Fallback::Distinct => format!("SELECT DISTINCT c0 FROM t1{where_sql}"),
            Fallback::OrderBy => format!("SELECT * FROM t1{where_sql} ORDER BY c0"),
            Fallback::Aggregate => format!("SELECT COUNT(*) AS n FROM t1{where_sql}"),
        };
        let (resident, paged) = catalogs(&t1, &t2, false);
        let any_compiled = assert_parity(&resident, &paged, &sql)?;
        // The compiler must decline every one of these shapes — even with
        // compilation forced on, the stats report the interpreted drive.
        prop_assert!(!any_compiled, "uncompilable shape reported compiled: {}", sql);
    }
}

/// A deterministic smoke check that the compiled path actually engages:
/// with compilation forced on, a plain scan→filter→project plan must
/// report `compiled == true` (otherwise the proptests above would pass
/// vacuously by never taking the compiled branch).
#[test]
fn forced_compilation_engages_on_a_plain_pipeline() {
    let schema = Schema::of(&[("c0", DataType::Int), ("c1", DataType::Str)]);
    let mut t = Table::new("t1", schema);
    for i in 0..100 {
        t.push(vec![Value::Int(i), Value::Str(format!("s{i}"))])
            .expect("typed row");
    }
    let mut catalog = Catalog::new();
    catalog.register(t).expect("fresh catalog");
    let (out, compiled) = run(
        &catalog,
        "SELECT c0, c0 + 1 AS bumped FROM t1 WHERE c0 > 10",
        1024,
        1,
        CompileMode::On,
    )
    .expect("plan runs");
    assert!(compiled, "forced compilation must engage");
    assert_eq!(out.len(), 89);
    // And `Off` (the CI leg's env default cannot override an explicit
    // argument) stays interpreted while agreeing on rows.
    let (out_i, compiled_i) = run(
        &catalog,
        "SELECT c0, c0 + 1 AS bumped FROM t1 WHERE c0 > 10",
        1024,
        1,
        CompileMode::Off,
    )
    .expect("plan runs");
    assert!(!compiled_i);
    assert_eq!(out, out_i);
}
