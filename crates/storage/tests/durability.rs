//! Corruption-path property tests for the durability subsystem.
//!
//! The contract under test: whatever happens to the bytes on disk —
//! truncation at any offset, a bit flip at any offset — recovery either
//! succeeds with a **prefix of committed state** (commit order is the
//! record order; a full recovery is the complete prefix) or fails with
//! `StorageError::Corrupt`. It never panics and never fabricates rows.

use kath_storage::*;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::with_budget(64))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "kathdb_durtest_{}_{name}_{}",
        std::process::id(),
        NEXT_DIR.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn kv_schema() -> Schema {
    Schema::of(&[("k", DataType::Int), ("v", DataType::Str)])
}

/// A committed history: CREATE kv, then one single-row INSERT per step.
fn history(rows: &[(i64, String)]) -> Vec<WalRecord> {
    let mut records = vec![WalRecord::CreateTable(Table::new("kv", kv_schema()))];
    for (k, v) in rows {
        records.push(WalRecord::Insert {
            table: "kv".to_string(),
            rows: vec![vec![Value::Int(*k), Value::Str(v.clone())]],
        });
    }
    records
}

/// Applies a record prefix to an empty state; returns the kv rows.
fn state_after(records: &[WalRecord]) -> Vec<Row> {
    let mut rows = Vec::new();
    for r in records {
        match r {
            WalRecord::CreateTable(_) => {}
            WalRecord::Insert { rows: new, .. } => rows.extend(new.iter().cloned()),
            _ => unreachable!("history only creates and inserts"),
        }
    }
    rows
}

fn write_wal(path: &Path, records: &[WalRecord]) {
    let (mut wal, replayed) = Wal::open(path).unwrap();
    assert!(replayed.is_empty());
    for r in records {
        wal.append(r).unwrap();
    }
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, String)>> {
    prop::collection::vec((any::<i64>(), "[a-z]{0,8}"), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating the WAL at ANY byte offset is a torn tail: recovery
    /// succeeds with exactly the records whose frames survived whole.
    #[test]
    fn truncated_wal_recovers_a_prefix(rows in arb_rows(), cut_seed in any::<u64>()) {
        let dir = tmp("trunc");
        let path = dir.join("wal").join("000000.log");
        let records = history(&rows);
        write_wal(&path, &records);
        let full = std::fs::metadata(&path).unwrap().len();
        let cut = cut_seed % (full + 1);
        std::fs::OpenOptions::new().write(true).open(&path).unwrap().set_len(cut).unwrap();

        let (_, replayed) = Wal::open(&path).unwrap();
        prop_assert!(replayed.len() <= records.len());
        prop_assert_eq!(&replayed[..], &records[..replayed.len()],
            "replay is not a prefix after cut at {}", cut);
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Flipping ANY single bit of the WAL either still recovers a prefix
    /// of committed state or errors with Corrupt — never panics, never
    /// yields records that were not committed.
    #[test]
    fn bitflipped_wal_never_fabricates_records(rows in arb_rows(), flip_seed in any::<u64>()) {
        let dir = tmp("flip");
        let path = dir.join("wal").join("000000.log");
        let records = history(&rows);
        write_wal(&path, &records);
        let mut data = std::fs::read(&path).unwrap();
        let bit = flip_seed % (data.len() as u64 * 8);
        data[(bit / 8) as usize] ^= 1 << (bit % 8);
        std::fs::write(&path, &data).unwrap();

        match Wal::open(&path) {
            Ok((_, replayed)) => {
                // A flip in a length field can tear the tail early; every
                // surviving record must still be a committed one, in order.
                prop_assert!(replayed.len() <= records.len());
                prop_assert_eq!(&replayed[..], &records[..replayed.len()],
                    "flip at bit {} fabricated state", bit);
            }
            Err(StorageError::Corrupt(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Flipping ANY single bit of any snapshot file (manifest or table)
    /// either falls back to older retained state — still recovering the
    /// full committed history — or errors with Corrupt. Never wrong rows.
    #[test]
    fn bitflipped_snapshot_never_returns_wrong_rows(
        rows in arb_rows(),
        extra in arb_rows(),
        flip_seed in any::<u64>(),
    ) {
        let dir = tmp("snapflip");
        let records = history(&rows);
        let pl = pool();
        {
            let (mut d, _) = Durability::open(&dir, &pl).unwrap();
            for r in &records {
                d.log(r).unwrap();
            }
            // Snapshot the state, then keep logging on top of it.
            let mut table = Table::new("kv", kv_schema());
            for row in state_after(&records) {
                table.push(row).unwrap();
            }
            d.checkpoint(&[Arc::new(table)], &pl, Some("{\"functions\": []}")).unwrap();
            for (k, v) in &extra {
                d.log(&WalRecord::Insert {
                    table: "kv".to_string(),
                    rows: vec![vec![Value::Int(*k), Value::Str(v.clone())]],
                }).unwrap();
            }
        }
        // Flip one bit in one file of the newest snapshot.
        let snap = dir.join("snapshots").join("000001");
        let mut files: Vec<_> = std::fs::read_dir(&snap)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        let file = &files[(flip_seed % files.len() as u64) as usize];
        let mut data = std::fs::read(file).unwrap();
        let bit = (flip_seed / 7) % (data.len() as u64 * 8);
        data[(bit / 8) as usize] ^= 1 << (bit % 8);
        std::fs::write(file, &data).unwrap();

        let mut full_rows = state_after(&records);
        full_rows.extend(
            extra.iter().map(|(k, v)| vec![Value::Int(*k), Value::Str(v.clone())]),
        );
        match Durability::open(&dir, &pl) {
            Ok((_, rec)) => {
                // The snapshot failed verification, so recovery fell back
                // to the empty epoch-0 state plus the full WAL chain: the
                // complete history, nothing invented.
                let mut got = rec
                    .tables
                    .iter()
                    .flat_map(|t| t.rows().iter().cloned())
                    .collect::<Vec<_>>();
                got.extend(state_after(&rec.wal_records));
                prop_assert_eq!(got, full_rows, "fallback recovery diverged");
            }
            Err(StorageError::Corrupt(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// The deterministic torn-tail contract: a partial final record is skipped
/// at open and overwritten by the next append.
#[test]
fn torn_tail_is_skipped_then_overwritten() {
    let dir = tmp("torn_det");
    let path = dir.join("wal").join("000000.log");
    let records = history(&[(1, "a".into()), (2, "b".into())]);
    write_wal(&path, &records);
    // Tear the final insert's frame.
    let full = std::fs::metadata(&path).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(full - 1)
        .unwrap();
    let (mut wal, replayed) = Wal::open(&path).unwrap();
    assert_eq!(replayed, records[..records.len() - 1]);
    let replacement = WalRecord::Insert {
        table: "kv".to_string(),
        rows: vec![vec![Value::Int(9), Value::Str("z".into())]],
    };
    wal.append(&replacement).unwrap();
    drop(wal);
    let (_, after) = Wal::open(&path).unwrap();
    let mut expected = records[..records.len() - 1].to_vec();
    expected.push(replacement);
    assert_eq!(after, expected);
    let _ = std::fs::remove_dir_all(dir);
}

/// Recovery across a checkpoint: snapshot + WAL tail reconstruct exactly
/// the committed state, byte for byte.
#[test]
fn checkpoint_plus_tail_reconstructs_committed_state() {
    let dir = tmp("reconstruct");
    let base = [(1i64, "a".to_string()), (2, "b".to_string())];
    let records = history(&base);
    let pl = pool();
    {
        let (mut d, _) = Durability::open(&dir, &pl).unwrap();
        for r in &records {
            d.log(r).unwrap();
        }
        let mut table = Table::new("kv", kv_schema());
        for row in state_after(&records) {
            table.push(row).unwrap();
        }
        d.checkpoint(&[Arc::new(table)], &pl, None).unwrap();
        d.log(&WalRecord::Insert {
            table: "kv".to_string(),
            rows: vec![vec![Value::Int(3), Value::Str("c".into())]],
        })
        .unwrap();
    }
    let (_, rec) = Durability::open(&dir, &pl).unwrap();
    assert_eq!(rec.snapshot_epoch, 1);
    assert_eq!(rec.tables.len(), 1);
    assert_eq!(rec.tables[0].len(), 2);
    assert_eq!(rec.wal_records.len(), 1);
    let mut rows = rec.tables[0].rows().to_vec();
    rows.extend(state_after(&rec.wal_records));
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(1), Value::Str("a".into())],
            vec![Value::Int(2), Value::Str("b".into())],
            vec![Value::Int(3), Value::Str("c".into())],
        ]
    );
    let _ = std::fs::remove_dir_all(dir);
}
