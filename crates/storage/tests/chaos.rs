//! Chaos property tests: seeded fault injection on the I/O seam.
//!
//! The contract under test, for ANY deterministic fault schedule: every
//! storage operation either succeeds, or fails with a clean typed error —
//! and after the faults clear, reopening the directory recovers a **prefix
//! of committed state** (at least every acknowledged write, at most one
//! in-flight unacknowledged one). Never a panic, never corruption served
//! as data, never an acknowledged-then-lost write.

use kath_storage::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "kathdb_chaos_{}_{name}_{}",
        std::process::id(),
        NEXT_DIR.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn kv_schema() -> Schema {
    Schema::of(&[("k", DataType::Int), ("v", DataType::Str)])
}

fn insert(k: i64, v: &str) -> WalRecord {
    WalRecord::Insert {
        table: "kv".to_string(),
        rows: vec![vec![Value::Int(k), Value::Str(v.to_string())]],
    }
}

/// The kv rows a recovered directory holds: snapshot table + WAL replay.
fn recovered_rows(rec: &Recovered) -> Vec<Row> {
    let mut rows: Vec<Row> = Vec::new();
    for t in &rec.tables {
        if t.name() == "kv" {
            rows.extend(t.rows().iter().cloned());
        }
    }
    for r in &rec.wal_records {
        if let WalRecord::Insert { rows: new, .. } = r {
            rows.extend(new.iter().cloned());
        }
    }
    rows
}

/// Any mix of fault kinds (the non-zero bitmask picks a non-empty subset)
/// over every operation class.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), 0.05f64..0.5, 1u8..16).prop_map(|(seed, p, mask)| {
        let all = [
            FaultKind::Transient,
            FaultKind::Permanent,
            FaultKind::Enospc,
            FaultKind::ShortWrite,
        ];
        let kinds: Vec<FaultKind> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| *k)
            .collect();
        FaultPlan::probabilistic(seed, p).with_kinds(&kinds)
    })
}

/// Case budget: 48 by default (fast enough for tier-1), deepened in CI's
/// chaos leg via `PROPTEST_CASES`.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// THE chaos invariant: under any probabilistic fault schedule, a
    /// log/checkpoint workload never panics, every failure is a typed
    /// error, and reopening after the faults clear recovers a prefix of
    /// committed state containing every acknowledged record (plus at most
    /// the one in-flight write that failed without acknowledgment).
    #[test]
    fn any_fault_schedule_recovers_acknowledged_state(
        kvs in prop::collection::vec((any::<i64>(), "[a-z]{0,6}"), 1..10),
        plan in arb_plan(),
        ckpt_at in 0usize..10,
    ) {
        let dir = tmp("sched");
        let io = Io::real();
        let pool = Arc::new(BufferPool::with_budget_io(4, io.clone()));
        let (mut d, _) = Durability::open(&dir, &pool).unwrap();
        // The baseline commit happens fault-free: CREATE TABLE kv.
        d.log(&WalRecord::CreateTable(Table::new("kv", kv_schema()))).unwrap();

        io.install_faults(plan);
        let mut acked = 0usize;
        for (i, (k, v)) in kvs.iter().enumerate() {
            if i == ckpt_at {
                // A checkpoint mid-stream: on success its snapshot holds
                // every acked row; on failure either nothing changed or
                // the handle is poisoned and refuses further appends —
                // both keep the invariant.
                let mut table = Table::new("kv", kv_schema());
                for (k, v) in &kvs[..acked] {
                    table.push(vec![Value::Int(*k), Value::Str(v.clone())]).unwrap();
                }
                let _ = d.checkpoint(&[Arc::new(table)], &pool, None);
            }
            match d.log(&insert(*k, v)) {
                Ok(()) => acked += 1,
                Err(StorageError::Io(_) | StorageError::Corrupt(_)) => break,
                Err(e) => prop_assert!(false, "untyped failure: {e}"),
            }
        }
        io.clear_faults();
        drop(d);

        // Reopen fault-free: recovery must succeed and hold a prefix.
        let pool2 = Arc::new(BufferPool::with_budget(4));
        let (_, rec) = Durability::open(&dir, &pool2).unwrap();
        let rows = recovered_rows(&rec);
        prop_assert!(
            rows.len() >= acked && rows.len() <= acked + 1,
            "recovered {} rows, acknowledged {acked}", rows.len()
        );
        for (row, (k, v)) in rows.iter().zip(kvs.iter()) {
            prop_assert_eq!(row, &vec![Value::Int(*k), Value::Str(v.clone())],
                "recovered state is not the committed prefix");
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Satellite 3's drive sweep: a file-backed paged table under a
    /// 1-page buffer pool with injected page-read faults. Every drive —
    /// Volcano, batched, morsel-parallel, and the compiled pipeline —
    /// either returns exactly the fault-free result or a typed Io/Corrupt
    /// error. Never a panic, never a wrong batch; and once the faults
    /// clear, the same pool serves correct results again.
    #[test]
    fn page_read_faults_never_yield_wrong_batches(
        n in 50usize..300,
        seed in any::<u64>(),
        p in 0.05f64..1.0,
        workers in 1usize..5,
    ) {
        let dir = tmp("reads");
        let io = Io::real();
        let pool = Arc::new(BufferPool::with_budget_io(1, io.clone()));
        // Build the file-backed table through a checkpoint round-trip.
        let mut table = Table::new("kv", kv_schema());
        for i in 0..n {
            table.push(vec![Value::Int(i as i64), Value::Str(format!("v{i}"))]).unwrap();
        }
        {
            let (mut d, _) = Durability::open(&dir, &pool).unwrap();
            d.log(&WalRecord::CreateTable(Table::new("kv", kv_schema()))).unwrap();
            d.checkpoint(&[Arc::new(table.clone())], &pool, None).unwrap();
        }
        let (_, rec) = Durability::open(&dir, &pool).unwrap();
        let paged = Arc::new(rec.tables.into_iter().find(|t| t.name() == "kv").unwrap());
        prop_assert!(paged.is_paged());

        let baseline: Vec<Row> = table.rows().to_vec();
        let check = |result: Result<Vec<Row>, StorageError>| -> Result<(), TestCaseError> {
            match result {
                Ok(rows) => prop_assert_eq!(&rows, &baseline, "faulty read served wrong rows"),
                Err(StorageError::Io(_) | StorageError::Corrupt(_)) => {}
                Err(e) => prop_assert!(false, "untyped failure: {e}"),
            }
            Ok(())
        };
        let volcano = |t: &Arc<Table>| {
            collect("out", Box::new(TableScan::new(Arc::clone(t))))
                .map(|out| out.rows().to_vec())
        };
        let batched = |t: &Arc<Table>| {
            collect_batched("out", Box::new(TableScan::new(Arc::clone(t)).with_batch_size(32)))
                .map(|(out, _)| out.rows().to_vec())
        };
        let parallel = |t: &Arc<Table>, workers: usize| {
            let pt = t.paged().unwrap();
            let source = MorselSource::with_batch_size_aligned(t.len(), 32, pt.page_rows());
            run_morsels(&source, workers, |m| {
                collect(
                    "m",
                    Box::new(TableScan::new(Arc::clone(t)).with_range(m.start, m.end)),
                )
                .map(|t| t.rows().to_vec())
            })
            .map(|run| run.outputs.into_iter().flatten().collect::<Vec<Row>>())
        };
        let compiled = |t: &Arc<Table>| {
            let pipeline =
                CompiledPipeline::compile(t.schema(), None, None).expect("identity compiles");
            let mut scan = TableScan::new(Arc::clone(t)).with_batch_size(32);
            let mut rows = Vec::new();
            loop {
                match scan.next_batch() {
                    Ok(Some(b)) => match pipeline.process(b) {
                        Ok(Some(out)) => rows.extend(out.into_rows()),
                        Ok(None) => {}
                        Err(e) => return Err(e),
                    },
                    Ok(None) => return Ok(rows),
                    Err(e) => return Err(e),
                }
            }
        };

        io.install_faults(FaultPlan::probabilistic(seed, p).on_ops(&[IoOp::Read]));
        check(volcano(&paged))?;
        check(batched(&paged))?;
        check(parallel(&paged, workers))?;
        check(compiled(&paged))?;
        io.clear_faults();

        // Fault-free again: every drive serves the exact table.
        prop_assert_eq!(volcano(&paged).unwrap(), baseline.clone());
        prop_assert_eq!(batched(&paged).unwrap(), baseline.clone());
        prop_assert_eq!(parallel(&paged, workers).unwrap(), baseline.clone());
        prop_assert_eq!(compiled(&paged).unwrap(), baseline);
        let _ = std::fs::remove_dir_all(dir);
    }
}
