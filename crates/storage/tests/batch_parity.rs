//! Property tests: batched and row-at-a-time execution are observationally
//! identical. For random tables (NULL-heavy, tiny value domains for join
//! and group collisions, sometimes empty) and random operator plans, the
//! Volcano `next()` drive and the columnar `next_batch()` drive at several
//! batch sizes must produce the same table — or both fail.

use kath_storage::{
    col_cmp, collect, collect_batched, AggFunc, Aggregate, BinOp, Distinct, Expr, Filter,
    HashAggregate, HashJoin, JoinKind, Limit, Operator, Project, Schema, Sort, SortKey,
    StorageError, Table, TableScan, Value,
};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone, Copy, PartialEq)]
enum ColType {
    Int,
    Float,
    Str,
    Bool,
}

/// A cell seed: nullness roll plus a small payload (small domains collide).
type CellSeed = (u8, i64);
/// One generated row: a seed per potential column.
type RowSeed = (CellSeed, CellSeed, CellSeed, CellSeed);

fn cell(t: ColType, (roll, k): CellSeed) -> Value {
    if roll % 3 == 0 {
        // NULL-heavy: about a third of all cells.
        return Value::Null;
    }
    match t {
        ColType::Int => Value::Int(k),
        ColType::Float => Value::Float(k as f64 * 0.5),
        ColType::Str => Value::Str(format!("s{k}")),
        ColType::Bool => Value::Bool(k % 2 == 0),
    }
}

fn dtype(t: ColType) -> kath_storage::DataType {
    match t {
        ColType::Int => kath_storage::DataType::Int,
        ColType::Float => kath_storage::DataType::Float,
        ColType::Str => kath_storage::DataType::Str,
        ColType::Bool => kath_storage::DataType::Bool,
    }
}

fn build_table(name: &str, types: &[ColType], rows: &[RowSeed]) -> Arc<Table> {
    let schema = Schema::new(
        types
            .iter()
            .enumerate()
            .map(|(i, t)| kath_storage::Column::new(format!("c{i}"), dtype(*t)))
            .collect(),
    )
    .expect("generated names are unique");
    let mut table = Table::new(name, schema);
    for seed in rows {
        let seeds = [seed.0, seed.1, seed.2, seed.3];
        let row: Vec<Value> = types.iter().zip(seeds).map(|(t, s)| cell(*t, s)).collect();
        table.push(row).expect("cells match their column types");
    }
    Arc::new(table)
}

/// Schema-independent operator specs; indices are resolved modulo the
/// input arity at build time.
#[derive(Debug, Clone)]
enum OpSpec {
    Filter {
        col: u8,
        cmp: u8,
        lit: i64,
        negate: bool,
    },
    Project {
        keep: u8,
        computed: Option<u8>,
    },
    Sort {
        col: u8,
        desc: bool,
    },
    Limit(u8),
    Distinct,
}

#[derive(Debug, Clone)]
enum TailSpec {
    None,
    Join { left: u8, right: u8, outer: bool },
    Aggregate { group: u8, func: u8, col: u8 },
}

fn arb_type() -> impl Strategy<Value = ColType> {
    prop_oneof![
        Just(ColType::Int),
        Just(ColType::Float),
        Just(ColType::Str),
        Just(ColType::Bool),
    ]
}

fn arb_row_seed() -> impl Strategy<Value = RowSeed> {
    let c = || (any::<u8>(), -4i64..5);
    (c(), c(), c(), c())
}

fn arb_op() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), -4i64..5, any::<bool>()).prop_map(|(col, cmp, lit, negate)| {
            OpSpec::Filter {
                col,
                cmp,
                lit,
                negate,
            }
        }),
        (any::<u8>(), prop::option::of(any::<u8>()))
            .prop_map(|(keep, computed)| OpSpec::Project { keep, computed }),
        (any::<u8>(), any::<bool>()).prop_map(|(col, desc)| OpSpec::Sort { col, desc }),
        (0u8..12).prop_map(OpSpec::Limit),
        Just(OpSpec::Distinct),
    ]
}

fn arb_tail() -> impl Strategy<Value = TailSpec> {
    prop_oneof![
        Just(TailSpec::None),
        (any::<u8>(), any::<u8>(), any::<bool>()).prop_map(|(left, right, outer)| TailSpec::Join {
            left,
            right,
            outer
        }),
        (any::<u8>(), 0u8..6, any::<u8>()).prop_map(|(group, func, col)| TailSpec::Aggregate {
            group,
            func,
            col
        }),
    ]
}

fn cmp_of(cmp: u8) -> BinOp {
    [
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ][cmp as usize % 6]
}

fn col_at(schema: &Schema, i: u8) -> String {
    schema.column(i as usize % schema.arity()).name.clone()
}

/// Builds the full plan; `batch` configures the scans' batch capacity.
fn build_plan(
    t1: &Arc<Table>,
    t2: &Arc<Table>,
    ops: &[OpSpec],
    tail: &TailSpec,
    batch: usize,
) -> Result<Box<dyn Operator>, StorageError> {
    let mut op: Box<dyn Operator> = Box::new(TableScan::new(Arc::clone(t1)).with_batch_size(batch));
    for spec in ops {
        if op.schema().arity() == 0 {
            break; // A degenerate projection left nothing to operate on.
        }
        op = match spec {
            OpSpec::Filter {
                col,
                cmp,
                lit,
                negate,
            } => {
                let mut pred = col_cmp(&col_at(op.schema(), *col), cmp_of(*cmp), *lit);
                if *negate {
                    pred = Expr::Not(Box::new(pred));
                }
                Box::new(Filter::new(op, pred))
            }
            OpSpec::Project { keep, computed } => {
                let arity = op.schema().arity();
                // A non-empty bitmask over the input columns.
                let mask = (*keep as usize % ((1 << arity) - 1)) + 1;
                let mut outputs: Vec<(String, Expr)> = (0..arity)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| {
                        let name = op.schema().column(i).name.clone();
                        (name.clone(), Expr::col(name))
                    })
                    .collect();
                if let Some(c) = computed {
                    let src = col_at(op.schema(), *c);
                    outputs.push((
                        "computed".to_string(),
                        Expr::col(src).bin(BinOp::Add, Expr::lit(1i64)),
                    ));
                }
                Box::new(Project::new(op, outputs)?)
            }
            OpSpec::Sort { col, desc } => {
                let column = col_at(op.schema(), *col);
                Box::new(Sort::new(
                    op,
                    vec![SortKey {
                        column,
                        desc: *desc,
                    }],
                )?)
            }
            OpSpec::Limit(n) => Box::new(Limit::new(op, *n as usize)),
            OpSpec::Distinct => Box::new(Distinct::new(op)),
        };
    }
    match tail {
        TailSpec::None => Ok(op),
        TailSpec::Join { left, right, outer } if op.schema().arity() > 0 => {
            let lcol = col_at(op.schema(), *left);
            let rcol = col_at(t2.schema(), *right);
            let rscan = Box::new(TableScan::new(Arc::clone(t2)).with_batch_size(batch));
            let kind = if *outer {
                JoinKind::Left
            } else {
                JoinKind::Inner
            };
            Ok(Box::new(HashJoin::new(op, rscan, &lcol, &rcol, kind)?))
        }
        TailSpec::Aggregate { group, func, col } if op.schema().arity() > 0 => {
            let group_col = col_at(op.schema(), *group);
            let func = [
                AggFunc::CountStar,
                AggFunc::Count,
                AggFunc::Sum,
                AggFunc::Avg,
                AggFunc::Min,
                AggFunc::Max,
            ][*func as usize % 6];
            let column = if func == AggFunc::CountStar {
                None
            } else {
                Some(col_at(op.schema(), *col))
            };
            Ok(Box::new(HashAggregate::new(
                op,
                vec![group_col],
                vec![Aggregate {
                    func,
                    column,
                    output: "agg_out".to_string(),
                }],
            )?))
        }
        _ => Ok(op),
    }
}

/// Sorting can tie; both drives must still agree because `Sort` is stable
/// and both consume the identical input order.
fn run_row(
    t1: &Arc<Table>,
    t2: &Arc<Table>,
    ops: &[OpSpec],
    tail: &TailSpec,
) -> Result<Table, StorageError> {
    collect("out", build_plan(t1, t2, ops, tail, 1024)?)
}

fn run_batched(
    t1: &Arc<Table>,
    t2: &Arc<Table>,
    ops: &[OpSpec],
    tail: &TailSpec,
    batch: usize,
) -> Result<Table, StorageError> {
    collect_batched("out", build_plan(t1, t2, ops, tail, batch)?).map(|(t, _)| t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn batched_matches_row_for_random_plans(
        types in (arb_type(), arb_type(), arb_type(), arb_type()),
        arity in 1usize..5,
        rows in prop::collection::vec(arb_row_seed(), 0..28),
        rows2 in prop::collection::vec(arb_row_seed(), 0..16),
        ops in prop::collection::vec(arb_op(), 0..4),
        tail in arb_tail(),
    ) {
        let types = [types.0, types.1, types.2, types.3];
        let t1 = build_table("t1", &types[..arity], &rows);
        let t2 = build_table("t2", &types[..arity], &rows2);

        let row_result = run_row(&t1, &t2, &ops, &tail);
        for batch in [1usize, 3, 1024] {
            let batched = run_batched(&t1, &t2, &ops, &tail, batch);
            match (&row_result, &batched) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    a, b,
                    "divergence at batch size {} for ops {:?} tail {:?}",
                    batch, &ops, &tail
                ),
                // A plan that fails (e.g. `+ 1` on a Bool column) must fail
                // on both drives.
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(
                    false,
                    "one drive failed: row={:?} batched(bs={})={:?}",
                    a.as_ref().map(Table::len), batch, b.as_ref().map(Table::len)
                ),
            }
        }
    }

    #[test]
    fn batched_matches_row_on_empty_and_all_null_tables(
        types in (arb_type(), arb_type(), arb_type(), arb_type()),
        arity in 1usize..5,
        n_rows in 0usize..6,
        ops in prop::collection::vec(arb_op(), 0..3),
    ) {
        let types = [types.0, types.1, types.2, types.3];
        // Roll 0 forces NULL in every cell.
        let rows: Vec<RowSeed> = vec![((0, 0), (0, 0), (0, 0), (0, 0)); n_rows];
        let t1 = build_table("t1", &types[..arity], &rows);
        let t2 = Arc::clone(&t1);

        let row_result = run_row(&t1, &t2, &ops, &TailSpec::None);
        for batch in [1usize, 1024] {
            let batched = run_batched(&t1, &t2, &ops, &TailSpec::None, batch);
            match (&row_result, &batched) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "drives disagreed on failure"),
            }
        }
    }
}
