//! Property tests for relational invariants.

use kath_storage::*;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1.0e6f64..1.0e6).prop_map(Value::Float),
        "[a-z]{0,6}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_table() -> impl Strategy<Value = Table> {
    prop::collection::vec((any::<i16>(), -100i64..100, "[a-z]{0,4}"), 0..40).prop_map(|rows| {
        let schema = Schema::of(&[
            ("id", DataType::Int),
            ("k", DataType::Int),
            ("s", DataType::Str),
        ]);
        Table::from_rows(
            "t",
            schema,
            rows.into_iter()
                .map(|(id, k, s)| vec![Value::Int(id as i64), Value::Int(k), Value::Str(s)])
                .collect(),
        )
        .unwrap()
    })
}

proptest! {
    /// Values are totally ordered: total_cmp is antisymmetric & transitive
    /// on sampled triples, and eq/hash agree with Equal.
    #[test]
    fn total_cmp_is_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering::*;
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if a.total_cmp(&b) == Equal && b.total_cmp(&c) == Equal {
            prop_assert_eq!(a.total_cmp(&c), Equal);
        }
        if a.total_cmp(&b) == Less && b.total_cmp(&c) == Less {
            prop_assert_eq!(a.total_cmp(&c), Less);
        }
        if a == b {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let h = |v: &Value| { let mut h = DefaultHasher::new(); v.hash(&mut h); h.finish() };
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    /// Filter output is a subset of its input and every row satisfies the
    /// predicate.
    #[test]
    fn filter_yields_satisfying_subset(t in arb_table(), threshold in -100i64..100) {
        let arc = Arc::new(t.clone());
        let pred = col_cmp("k", BinOp::Ge, threshold);
        let f = Filter::new(Box::new(TableScan::new(arc)), pred);
        let out = collect("f", Box::new(f)).unwrap();
        prop_assert!(out.len() <= t.len());
        for r in out.rows() {
            prop_assert!(r[1].as_int().unwrap() >= threshold);
        }
        let expected = t.rows().iter().filter(|r| r[1].as_int().unwrap() >= threshold).count();
        prop_assert_eq!(out.len(), expected);
    }

    /// Hash join row count equals the sum over left rows of matching right
    /// rows; inner join ⊆ left join.
    #[test]
    fn join_cardinality_is_exact(l in arb_table(), r in arb_table()) {
        let la = Arc::new(l.clone());
        let ra = Arc::new(r.clone());
        let inner = HashJoin::new(
            Box::new(TableScan::new(Arc::clone(&la))),
            Box::new(TableScan::new(Arc::clone(&ra))),
            "k", "k", JoinKind::Inner,
        ).unwrap();
        let inner_t = collect("j", Box::new(inner)).unwrap();
        let mut expected = 0usize;
        for lr in l.rows() {
            expected += r.rows().iter().filter(|rr| rr[1] == lr[1]).count();
        }
        prop_assert_eq!(inner_t.len(), expected);

        let left = HashJoin::new(
            Box::new(TableScan::new(la)),
            Box::new(TableScan::new(ra)),
            "k", "k", JoinKind::Left,
        ).unwrap();
        let left_t = collect("j", Box::new(left)).unwrap();
        prop_assert!(left_t.len() >= l.len());
        prop_assert!(left_t.len() >= inner_t.len());
    }

    /// Sort emits a permutation in nondecreasing key order.
    #[test]
    fn sort_is_ordered_permutation(t in arb_table()) {
        let arc = Arc::new(t.clone());
        let s = Sort::new(
            Box::new(TableScan::new(arc)),
            vec![SortKey { column: "k".into(), desc: false }],
        ).unwrap();
        let out = collect("s", Box::new(s)).unwrap();
        prop_assert_eq!(out.len(), t.len());
        for w in out.rows().windows(2) {
            prop_assert!(w[0][1].total_cmp(&w[1][1]) != std::cmp::Ordering::Greater);
        }
        let mut a: Vec<i64> = t.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        let mut b: Vec<i64> = out.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        a.sort(); b.sort();
        prop_assert_eq!(a, b);
    }

    /// Persistence round-trips any table.
    #[test]
    fn persistence_round_trip(t in arb_table()) {
        let back = decode_table(&encode_table(&t).unwrap()).unwrap();
        prop_assert_eq!(back, t);
    }

    /// Aggregate COUNT(*) grouped by k sums to the table size.
    #[test]
    fn group_counts_sum_to_total(t in arb_table()) {
        let arc = Arc::new(t.clone());
        let agg = HashAggregate::new(
            Box::new(TableScan::new(arc)),
            vec!["k".into()],
            vec![Aggregate { func: AggFunc::CountStar, column: None, output: "n".into() }],
        ).unwrap();
        let out = collect("g", Box::new(agg)).unwrap();
        let total: i64 = out.rows().iter().map(|r| r[1].as_int().unwrap()).sum();
        prop_assert_eq!(total as usize, t.len());
    }

    /// Distinct is idempotent and never grows.
    #[test]
    fn distinct_shrinks_and_is_idempotent(t in arb_table()) {
        let arc = Arc::new(t.clone());
        let d1 = collect("d", Box::new(Distinct::new(Box::new(TableScan::new(arc))))).unwrap();
        prop_assert!(d1.len() <= t.len());
        let d2 = collect("d", Box::new(Distinct::new(Box::new(TableScan::new(Arc::new(d1.clone())))))).unwrap();
        prop_assert_eq!(d2.len(), d1.len());
    }
}
