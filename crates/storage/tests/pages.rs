//! Property tests for the column-page codec and the buffer pool.
//!
//! Two contracts are pinned here:
//!
//! 1. **Codec round-trip** — `decode_page(encode_page(v)) == v` for every
//!    value shape the encodings specialize on: NULL-heavy columns, empty
//!    pages, single values, low-cardinality strings (dictionary), runs
//!    (RLE), max-cardinality strings (every value distinct), extreme
//!    integers, and mixed-type pages that fall back to raw.
//! 2. **Pool-size independence** — a paged table behind a pool capped at
//!    1–4 pages returns exactly the same rows as one behind an effectively
//!    unbounded pool. Eviction pressure changes wall-clock, never results.

use kath_storage::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Encode → decode → compare, and sanity-check the embedded zone map.
fn roundtrip(values: &[Value]) {
    let (bytes, zone) = encode_page(values).expect("encodable page");
    assert_eq!(zone.rows as usize, values.len());
    assert_eq!(
        zone.null_count as usize,
        values.iter().filter(|v| matches!(v, Value::Null)).count()
    );
    assert!(page_encoding_name(&bytes).is_some());
    let col = decode_page(&bytes).expect("own encoding decodes");
    assert_eq!(col.len(), values.len());
    for (i, want) in values.iter().enumerate() {
        assert_eq!(&col.value(i), want, "slot {i} diverged");
    }
}

/// One arbitrary non-NULL value (`any::<f64>()` is finite here: the codec
/// preserves NaN bits, but `Value` equality cannot compare them).
fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-z]{0,6}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
        prop::collection::vec(any::<u8>(), 0..12).prop_map(Value::Blob),
    ]
}

/// A column drawn from one generator with an independent per-slot chance of
/// NULL — `weight` percent of the slots become NULL on average.
fn with_nulls(
    inner: impl Strategy<Value = Value>,
    weight: u32,
) -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(
        (0u32..100, inner).prop_map(move |(roll, v)| if roll < weight { Value::Null } else { v }),
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn int_pages_round_trip(values in with_nulls(any::<i64>().prop_map(Value::Int), 20)) {
        roundtrip(&values);
    }

    #[test]
    fn float_pages_round_trip(values in with_nulls(any::<f64>().prop_map(Value::Float), 20)) {
        roundtrip(&values);
    }

    /// Low-cardinality strings: the dictionary encoding's home turf.
    #[test]
    fn dict_string_pages_round_trip(values in with_nulls("[ab]{1,2}".prop_map(Value::Str), 20)) {
        roundtrip(&values);
    }

    /// Runs of repeated strings: the RLE encoding's home turf.
    #[test]
    fn rle_string_pages_round_trip(
        runs in prop::collection::vec(("[a-c]{0,3}", 1usize..20), 0..12),
    ) {
        let mut values = Vec::new();
        for (s, n) in runs {
            values.extend(std::iter::repeat_n(Value::Str(s), n));
        }
        roundtrip(&values);
    }

    /// Max-cardinality strings — every value distinct — must survive the
    /// dictionary path (codes as wide as the page) or whatever wins.
    #[test]
    fn unique_string_pages_round_trip(n in 0usize..300) {
        let values: Vec<Value> = (0..n).map(|i| Value::Str(format!("u{i:05}"))).collect();
        roundtrip(&values);
    }

    /// NULL-heavy pages exercise the bitmap header at every density.
    #[test]
    fn null_heavy_pages_round_trip(values in with_nulls(arb_scalar(), 85)) {
        roundtrip(&values);
    }

    /// Mixed-type pages fall back to the raw encoding, losing nothing.
    #[test]
    fn mixed_pages_round_trip(values in prop::collection::vec(arb_scalar(), 0..120)) {
        roundtrip(&values);
    }

    /// A paged table behind a starved pool (1–4 pages) is indistinguishable
    /// from one behind an unbounded pool: same rows at every index, same
    /// full materialization, and the starved pool actually evicted.
    #[test]
    fn starved_pool_is_result_identical_to_unbounded(
        rows in prop::collection::vec((any::<i64>(), "[a-d]{0,3}"), 1..300),
        budget in 1usize..5,
        page_rows in 8usize..40,
    ) {
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Str)]);
        let data: Vec<Row> = rows
            .iter()
            .map(|(k, v)| vec![Value::Int(*k), Value::Str(v.clone())])
            .collect();
        let mut reference = Table::new("t", schema.clone());
        reference.extend(data.clone()).unwrap();

        let starved_pool = Arc::new(BufferPool::with_budget(budget));
        let starved = reference.to_paged(&starved_pool, page_rows).unwrap();
        let roomy_pool = Arc::new(BufferPool::with_budget(1_000_000));
        let roomy = reference.to_paged(&roomy_pool, page_rows).unwrap();

        for (i, want) in data.iter().enumerate() {
            let a = starved.row_at(i).unwrap().expect("in bounds");
            let b = roomy.row_at(i).unwrap().expect("in bounds");
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(&a, want);
        }
        prop_assert_eq!(starved.rows(), reference.rows());
        prop_assert_eq!(roomy.rows(), reference.rows());

        let total_pages = 2 * data.len().div_ceil(page_rows);
        if total_pages > budget {
            prop_assert!(
                starved_pool.status().evictions > 0,
                "{} pages never evicted under a {}-page budget",
                total_pages,
                budget
            );
        }
        prop_assert!(starved_pool.status().resident_pages <= budget);
    }
}

/// The degenerate shapes the strategies above reach only probabilistically.
#[test]
fn degenerate_pages_round_trip() {
    roundtrip(&[]);
    roundtrip(&[Value::Int(42)]);
    roundtrip(&[Value::Null]);
    roundtrip(&std::iter::repeat_n(Value::Null, 977).collect::<Vec<_>>());
    roundtrip(&[Value::Int(i64::MIN), Value::Int(i64::MAX)]);
    roundtrip(&[Value::Str(String::new())]);
    roundtrip(&[Value::Blob(Vec::new()), Value::Null]);
}
