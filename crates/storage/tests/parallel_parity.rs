//! Property tests: morsel-driven parallel execution is observationally
//! identical to serial execution, at every worker count.
//!
//! For random tables (NULL-heavy, tiny value domains for join and group
//! collisions, sometimes empty) and random plans — a stateless streaming
//! prefix (filter/project) plus an optional pipeline breaker (sort,
//! aggregate, shared-build hash join) — the serial operator drive and the
//! parallel composition (per-morsel pipelines over [`MorselSource`],
//! thread-local [`PartialAggregate`]s, sorted-run merges, all merged in
//! morsel order) must produce the same table with the same row order — or
//! both must fail.

use kath_storage::{
    col_cmp, collect, merge_sorted_runs, resolve_sort_keys, run_morsels, sort_rows, AggFunc,
    Aggregate, BinOp, Expr, Filter, HashAggregate, HashJoin, JoinBuild, JoinKind, Morsel,
    MorselSource, Operator, PartialAggregate, Project, Row, Schema, Sort, SortKey, StorageError,
    Table, TableScan, Value,
};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone, Copy, PartialEq)]
enum ColType {
    Int,
    Float,
    Str,
    Bool,
}

/// A cell seed: nullness roll plus a small payload (small domains collide).
type CellSeed = (u8, i64);
/// One generated row: a seed per potential column.
type RowSeed = (CellSeed, CellSeed, CellSeed, CellSeed);

fn cell(t: ColType, (roll, k): CellSeed) -> Value {
    if roll % 3 == 0 {
        // NULL-heavy: about a third of all cells.
        return Value::Null;
    }
    match t {
        ColType::Int => Value::Int(k),
        ColType::Float => Value::Float(k as f64 * 0.5),
        ColType::Str => Value::Str(format!("s{k}")),
        ColType::Bool => Value::Bool(k % 2 == 0),
    }
}

fn dtype(t: ColType) -> kath_storage::DataType {
    match t {
        ColType::Int => kath_storage::DataType::Int,
        ColType::Float => kath_storage::DataType::Float,
        ColType::Str => kath_storage::DataType::Str,
        ColType::Bool => kath_storage::DataType::Bool,
    }
}

fn build_table(name: &str, types: &[ColType], rows: &[RowSeed]) -> Arc<Table> {
    let schema = Schema::new(
        types
            .iter()
            .enumerate()
            .map(|(i, t)| kath_storage::Column::new(format!("c{i}"), dtype(*t)))
            .collect(),
    )
    .expect("generated names are unique");
    let mut table = Table::new(name, schema);
    for seed in rows {
        let seeds = [seed.0, seed.1, seed.2, seed.3];
        let row: Vec<Value> = types.iter().zip(seeds).map(|(t, s)| cell(*t, s)).collect();
        table.push(row).expect("cells match their column types");
    }
    Arc::new(table)
}

/// Stateless streaming operators — the part of a plan parallel workers run
/// independently per morsel.
#[derive(Debug, Clone)]
enum StreamOp {
    Filter {
        col: u8,
        cmp: u8,
        lit: i64,
        negate: bool,
    },
    Project {
        keep: u8,
        computed: Option<u8>,
    },
}

/// Pipeline breakers — where the parallel driver switches to thread-local
/// partial state plus a deterministic merge.
#[derive(Debug, Clone)]
enum Breaker {
    None,
    Sort { col: u8, desc: bool },
    Aggregate { group: u8, func: u8, col: u8 },
    Join { left: u8, right: u8, outer: bool },
}

fn arb_type() -> impl Strategy<Value = ColType> {
    prop_oneof![
        Just(ColType::Int),
        Just(ColType::Float),
        Just(ColType::Str),
        Just(ColType::Bool),
    ]
}

fn arb_row_seed() -> impl Strategy<Value = RowSeed> {
    let c = || (any::<u8>(), -4i64..5);
    (c(), c(), c(), c())
}

fn arb_stream_op() -> impl Strategy<Value = StreamOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), -4i64..5, any::<bool>()).prop_map(|(col, cmp, lit, negate)| {
            StreamOp::Filter {
                col,
                cmp,
                lit,
                negate,
            }
        }),
        (any::<u8>(), prop::option::of(any::<u8>()))
            .prop_map(|(keep, computed)| StreamOp::Project { keep, computed }),
    ]
}

fn arb_breaker() -> impl Strategy<Value = Breaker> {
    prop_oneof![
        Just(Breaker::None),
        (any::<u8>(), any::<bool>()).prop_map(|(col, desc)| Breaker::Sort { col, desc }),
        (any::<u8>(), 0u8..6, any::<u8>()).prop_map(|(group, func, col)| Breaker::Aggregate {
            group,
            func,
            col
        }),
        (any::<u8>(), any::<u8>(), any::<bool>()).prop_map(|(left, right, outer)| Breaker::Join {
            left,
            right,
            outer
        }),
    ]
}

fn cmp_of(cmp: u8) -> BinOp {
    [
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ][cmp as usize % 6]
}

fn col_at(schema: &Schema, i: u8) -> String {
    schema.column(i as usize % schema.arity()).name.clone()
}

/// Applies the stateless prefix over an input operator.
fn apply_stream_ops(
    mut op: Box<dyn Operator>,
    ops: &[StreamOp],
) -> Result<Box<dyn Operator>, StorageError> {
    for spec in ops {
        if op.schema().arity() == 0 {
            break; // A degenerate projection left nothing to operate on.
        }
        op = match spec {
            StreamOp::Filter {
                col,
                cmp,
                lit,
                negate,
            } => {
                let mut pred = col_cmp(&col_at(op.schema(), *col), cmp_of(*cmp), *lit);
                if *negate {
                    pred = Expr::Not(Box::new(pred));
                }
                Box::new(Filter::new(op, pred))
            }
            StreamOp::Project { keep, computed } => {
                let arity = op.schema().arity();
                // A non-empty bitmask over the input columns.
                let mask = (*keep as usize % ((1 << arity) - 1)) + 1;
                let mut outputs: Vec<(String, Expr)> = (0..arity)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| {
                        let name = op.schema().column(i).name.clone();
                        (name.clone(), Expr::col(name))
                    })
                    .collect();
                if let Some(c) = computed {
                    let src = col_at(op.schema(), *c);
                    outputs.push((
                        "computed".to_string(),
                        Expr::col(src).bin(BinOp::Add, Expr::lit(1i64)),
                    ));
                }
                Box::new(Project::new(op, outputs)?)
            }
        };
    }
    Ok(op)
}

fn sort_key_of(schema: &Schema, col: u8, desc: bool) -> SortKey {
    SortKey {
        column: col_at(schema, col),
        desc,
    }
}

fn aggregate_of(schema: &Schema, group: u8, func: u8, col: u8) -> (Vec<String>, Vec<Aggregate>) {
    let func = [
        AggFunc::CountStar,
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Min,
        AggFunc::Max,
    ][func as usize % 6];
    let column = if func == AggFunc::CountStar {
        None
    } else {
        Some(col_at(schema, col))
    };
    (
        vec![col_at(schema, group)],
        vec![Aggregate {
            func,
            column,
            output: "agg_out".to_string(),
        }],
    )
}

/// The serial reference: one operator chain, tuple-at-a-time collection.
fn run_serial(
    t1: &Arc<Table>,
    t2: &Arc<Table>,
    ops: &[StreamOp],
    breaker: &Breaker,
) -> Result<Table, StorageError> {
    let scan: Box<dyn Operator> = Box::new(TableScan::new(Arc::clone(t1)));
    let op = apply_stream_ops(scan, ops)?;
    let op: Box<dyn Operator> = match breaker {
        Breaker::None => op,
        _ if op.schema().arity() == 0 => op,
        Breaker::Sort { col, desc } => {
            let key = sort_key_of(op.schema(), *col, *desc);
            Box::new(Sort::new(op, vec![key])?)
        }
        Breaker::Aggregate { group, func, col } => {
            let (group_by, aggs) = aggregate_of(op.schema(), *group, *func, *col);
            Box::new(HashAggregate::new(op, group_by, aggs)?)
        }
        Breaker::Join { left, right, outer } => {
            let lcol = col_at(op.schema(), *left);
            let rcol = col_at(t2.schema(), *right);
            let rscan = Box::new(TableScan::new(Arc::clone(t2)));
            let kind = if *outer {
                JoinKind::Left
            } else {
                JoinKind::Inner
            };
            Box::new(HashJoin::new(op, rscan, &lcol, &rcol, kind)?)
        }
    };
    collect("out", op)
}

/// The parallel composition: per-morsel pipelines over a shared atomic
/// cursor, thread-local partial states, merged in morsel order.
fn run_parallel(
    t1: &Arc<Table>,
    t2: &Arc<Table>,
    ops: &[StreamOp],
    breaker: &Breaker,
    workers: usize,
    morsel_rows: usize,
) -> Result<Table, StorageError> {
    let source = MorselSource::new(t1.len(), morsel_rows);
    // Schema probe: an empty-range pipeline yields the stream schema
    // without touching data.
    let probe = apply_stream_ops(
        Box::new(TableScan::new(Arc::clone(t1)).with_range(0, 0)),
        ops,
    )?;
    let stream_schema = probe.schema().clone();
    let make_stream = |m: Morsel| -> Result<Box<dyn Operator>, StorageError> {
        apply_stream_ops(
            Box::new(
                TableScan::new(Arc::clone(t1))
                    .with_range(m.start, m.end)
                    .with_batch_size(morsel_rows),
            ),
            ops,
        )
    };
    let drain = |op: &mut dyn Operator| -> Result<Vec<Row>, StorageError> {
        let mut rows = Vec::new();
        while let Some(b) = op.next_batch()? {
            rows.extend(b.into_rows());
        }
        Ok(rows)
    };

    let degenerate = stream_schema.arity() == 0;
    let (schema, rows) = match breaker {
        _ if degenerate => {
            let run = run_morsels(&source, workers, |m| drain(make_stream(m)?.as_mut()))?;
            (stream_schema, run.outputs.into_iter().flatten().collect())
        }
        Breaker::None => {
            let run = run_morsels(&source, workers, |m| drain(make_stream(m)?.as_mut()))?;
            (stream_schema, run.outputs.into_iter().flatten().collect())
        }
        Breaker::Sort { col, desc } => {
            let key = sort_key_of(&stream_schema, *col, *desc);
            let key_idx = resolve_sort_keys(&stream_schema, &[key])?;
            let run = run_morsels(&source, workers, |m| {
                let mut rows = drain(make_stream(m)?.as_mut())?;
                sort_rows(&mut rows, &key_idx);
                Ok(rows)
            })?;
            (stream_schema, merge_sorted_runs(run.outputs, &key_idx))
        }
        Breaker::Aggregate { group, func, col } => {
            let (group_by, aggs) = aggregate_of(&stream_schema, *group, *func, *col);
            let run = run_morsels(&source, workers, |m| {
                let mut op = make_stream(m)?;
                let mut partial = PartialAggregate::new(&stream_schema, &group_by, aggs.clone())?;
                partial.consume(op.as_mut())?;
                Ok(partial)
            })?;
            let mut acc = PartialAggregate::new(&stream_schema, &group_by, aggs)?;
            for partial in run.outputs {
                acc.merge(partial);
            }
            acc.finish()
        }
        Breaker::Join { left, right, outer } => {
            let lcol = col_at(&stream_schema, *left);
            let rcol = col_at(t2.schema(), *right);
            let kind = if *outer {
                JoinKind::Left
            } else {
                JoinKind::Inner
            };
            // The pipeline breaker: one shared build, probed per morsel.
            let build = Arc::new(JoinBuild::build(
                Box::new(TableScan::new(Arc::clone(t2))),
                &rcol,
            )?);
            let joined_schema = stream_schema.join(build.right_schema(), "right");
            let run = run_morsels(&source, workers, |m| {
                let stream = make_stream(m)?;
                let mut probe: Box<dyn Operator> = Box::new(HashJoin::from_build(
                    stream,
                    Arc::clone(&build),
                    &lcol,
                    kind,
                )?);
                drain(probe.as_mut())
            })?;
            (joined_schema, run.outputs.into_iter().flatten().collect())
        }
    };
    Table::from_rows("out", schema, rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_matches_serial_for_random_plans(
        types in (arb_type(), arb_type(), arb_type(), arb_type()),
        arity in 1usize..5,
        rows in prop::collection::vec(arb_row_seed(), 0..48),
        rows2 in prop::collection::vec(arb_row_seed(), 0..16),
        ops in prop::collection::vec(arb_stream_op(), 0..4),
        breaker in arb_breaker(),
        morsel_rows in 1usize..9,
    ) {
        let types = [types.0, types.1, types.2, types.3];
        let t1 = build_table("t1", &types[..arity], &rows);
        let t2 = build_table("t2", &types[..arity], &rows2);

        let serial = run_serial(&t1, &t2, &ops, &breaker);
        for workers in [1usize, 2, 8] {
            let parallel = run_parallel(&t1, &t2, &ops, &breaker, workers, morsel_rows);
            match (&serial, &parallel) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    a, b,
                    "divergence at {} workers (morsel {}) for ops {:?} breaker {:?}",
                    workers, morsel_rows, &ops, &breaker
                ),
                // A plan that fails (e.g. `+ 1` on a Bool column) must fail
                // on both drives.
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(
                    false,
                    "one drive failed at {} workers: serial={:?} parallel={:?}",
                    workers, a.as_ref().map(Table::len), b.as_ref().map(Table::len)
                ),
            }
        }
    }

    #[test]
    fn parallel_matches_serial_on_empty_and_all_null_tables(
        types in (arb_type(), arb_type(), arb_type(), arb_type()),
        arity in 1usize..5,
        n_rows in 0usize..6,
        ops in prop::collection::vec(arb_stream_op(), 0..3),
        breaker in arb_breaker(),
    ) {
        let types = [types.0, types.1, types.2, types.3];
        // Roll 0 forces NULL in every cell.
        let rows: Vec<RowSeed> = vec![((0, 0), (0, 0), (0, 0), (0, 0)); n_rows];
        let t1 = build_table("t1", &types[..arity], &rows);
        let t2 = Arc::clone(&t1);

        let serial = run_serial(&t1, &t2, &ops, &breaker);
        for workers in [1usize, 2, 8] {
            let parallel = run_parallel(&t1, &t2, &ops, &breaker, workers, 4);
            match (&serial, &parallel) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "drives disagreed on failure at {} workers", workers),
            }
        }
    }
}
