//! Property tests for cross-type `Value` ordering.
//!
//! `sql_cmp` (the SQL comparison behind `=`, `<`, …) and `total_cmp` (the
//! total order behind ORDER BY, grouping, and equality) must agree on
//! Int↔Float comparisons — including integers above 2^53, where the old
//! `i64 as f64` widening silently collapsed distinct values.

use kath_storage::{cmp_int_f64, Value};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Floats biased toward the interesting region: exact images of random
/// i64s (often > 2^53), their neighbours, and ordinary magnitudes.
fn arb_float() -> impl Strategy<Value = f64> {
    prop_oneof![
        any::<f64>(),
        any::<i64>().prop_map(|i| i as f64),
        any::<i64>().prop_map(|i| (i as f64) + 0.5),
        (any::<i64>(), 0u8..3).prop_map(|(i, ulps)| {
            let mut f = i as f64;
            for _ in 0..ulps {
                f = f.next_up();
            }
            f
        }),
        (any::<i64>(), 0u8..3).prop_map(|(i, ulps)| {
            let mut f = i as f64;
            for _ in 0..ulps {
                f = f.next_down();
            }
            f
        }),
    ]
}

proptest! {
    /// The satellite's pin: `sql_cmp` is consistent with the total order on
    /// mixed Int/Float values of any magnitude (NaN excepted: unknown in
    /// SQL, positioned in the total order).
    #[test]
    fn sql_cmp_matches_total_cmp_on_mixed_numerics(a in any::<i64>(), b in arb_float()) {
        let int_v = Value::Int(a);
        let float_v = Value::Float(b);
        if b.is_nan() {
            prop_assert_eq!(int_v.sql_cmp(&float_v), None);
        } else {
            prop_assert_eq!(
                int_v.sql_cmp(&float_v),
                Some(int_v.total_cmp(&float_v)),
                "Int({}) vs Float({})", a, b
            );
            prop_assert_eq!(
                float_v.sql_cmp(&int_v),
                Some(float_v.total_cmp(&int_v)),
                "Float({}) vs Int({})", b, a
            );
        }
    }

    /// Antisymmetry across the Int/Float boundary.
    #[test]
    fn cross_type_comparison_is_antisymmetric(a in any::<i64>(), b in arb_float()) {
        let fwd = Value::Int(a).sql_cmp(&Value::Float(b));
        let rev = Value::Float(b).sql_cmp(&Value::Int(a));
        prop_assert_eq!(fwd, rev.map(Ordering::reverse));
        let fwd_total = Value::Int(a).total_cmp(&Value::Float(b));
        let rev_total = Value::Float(b).total_cmp(&Value::Int(a));
        prop_assert_eq!(fwd_total, rev_total.reverse());
    }

    /// An integer compared against its own (possibly rounded) f64 image:
    /// the verdict must match exact integer arithmetic. `i as f64` is
    /// integral and within [-2^63, 2^63] by construction, so truncating it
    /// to i128 is exact and gives an independent reference.
    #[test]
    fn comparison_against_own_rounding_is_exact(a in any::<i64>()) {
        let r = a as f64;
        let reference = (a as i128).cmp(&(r as i128));
        prop_assert_eq!(
            cmp_int_f64(a, r),
            Some(reference),
            "Int({}) vs its f64 image {}", a, r
        );
        // Equality must coincide with exact round-tripping.
        let eq = Value::Int(a) == Value::Float(r);
        prop_assert_eq!(eq, reference == Ordering::Equal);
    }

    /// Values that compare equal must hash equal (joins and grouping mix
    /// Int and Float keys).
    #[test]
    fn equal_mixed_values_hash_alike(a in any::<i64>(), b in arb_float()) {
        let int_v = Value::Int(a);
        let float_v = Value::Float(b);
        if int_v == float_v {
            prop_assert_eq!(hash_of(&int_v), hash_of(&float_v));
        }
    }

    /// Offsetting the float by ±1 around an integer always flips the
    /// comparison the right way for in-range values.
    #[test]
    fn unit_offsets_order_correctly(a in -1_000_000_000_000i64..1_000_000_000_000i64) {
        prop_assert_eq!(cmp_int_f64(a, a as f64 - 1.0), Some(Ordering::Greater));
        prop_assert_eq!(cmp_int_f64(a, a as f64 + 1.0), Some(Ordering::Less));
        prop_assert_eq!(cmp_int_f64(a, a as f64 + 0.5), Some(Ordering::Less));
        prop_assert_eq!(cmp_int_f64(a, a as f64 - 0.5), Some(Ordering::Greater));
    }
}
