//! Concurrent sessions over one shared, versioned catalog.
//!
//! A [`Session`] is an independent handle onto a [`KathDB`]'s shared
//! catalog: it reads MVCC snapshots (one frozen catalog version per
//! statement), commits through the same group-commit WAL as every other
//! session, and carries its **own** guard settings — timeout, budgets,
//! and a private cancel token, so cancelling one session never aborts
//! another. Sessions are `Send`: hand them to worker threads and run SQL
//! concurrently against one database.
//!
//! Explicit transactions ([`Session::begin`] … [`Session::commit`]) stage
//! mutations on a private copy of the begin-time snapshot — visible to the
//! session's own SELECTs (read-your-writes), invisible to everyone else —
//! and publish atomically at commit as a single `Begin..Commit` WAL frame.
//! Conflict resolution is first-committer-wins: the staged records
//! re-validate against the catalog head at commit, so a transaction that
//! raced a conflicting DDL (say, both created the same table) fails
//! cleanly with nothing logged or published.
//!
//! Sessions speak SQL. The NL pipeline (parse → verify → compile →
//! execute) stays on the [`KathDB`] facade: it mutates the function
//! registry and the lineage store, which are facade state, not catalog
//! state.
//!
//! [`KathDB`]: crate::KathDB

use crate::KathError;
use kath_optimizer::{preferred_exec_mode, preferred_parallelism};
use kath_sql::{SqlError, Statement};
use kath_storage::{
    CancelToken, Catalog, CatalogRef, CompileMode, ExecMode, GuardSpec, SharedCatalog, Table,
    VectorMode, WalRecord,
};

/// A staged transaction: a private working copy of the begin-time
/// snapshot plus the WAL records to publish at commit.
pub struct TxnStage {
    work: Catalog,
    staged: Vec<WalRecord>,
    base_version: u64,
}

impl TxnStage {
    /// Opens a stage over `snap`: the working copy starts as a cheap
    /// structural clone (tables are `Arc`-shared, never row-copied).
    pub fn new(snap: &CatalogRef) -> Self {
        Self {
            work: snap.catalog().clone(),
            staged: Vec::new(),
            base_version: snap.version(),
        }
    }

    /// The catalog version this transaction's snapshot was taken at.
    pub fn base_version(&self) -> u64 {
        self.base_version
    }

    /// The number of mutations staged so far.
    pub fn staged_records(&self) -> usize {
        self.staged.len()
    }

    /// The working catalog — the session's own SELECTs read this
    /// (read-your-writes); no other session can see it.
    pub(crate) fn working(&self) -> &Catalog {
        &self.work
    }

    /// Validates `stmt` against the working catalog, applies it there,
    /// and stages its WAL record for commit.
    pub(crate) fn mutate(&mut self, stmt: &Statement) -> Result<Table, SqlError> {
        let record = kath_sql::plan_mutation(&self.work, stmt)?;
        let out = kath_sql::apply_mutation(&mut self.work, &record, "sql_result")?;
        self.staged.push(record);
        Ok(out)
    }

    /// Commits the stage: re-applies every staged record to the current
    /// catalog head (first committer wins — a conflicting concurrent
    /// commit fails the re-apply and nothing is logged), writes them as
    /// one framed `Begin..Commit` group through the group-commit
    /// coordinator, and returns once durable. Returns the record count.
    pub(crate) fn commit(self, shared: &SharedCatalog) -> Result<usize, SqlError> {
        if self.staged.is_empty() {
            return Ok(0);
        }
        let staged = self.staged;
        shared.submit::<(), SqlError>(&staged, true, |c| {
            for record in &staged {
                kath_sql::apply_mutation(c, record, "txn_commit")?;
            }
            Ok(())
        })?;
        Ok(staged.len())
    }

    /// Discards the stage; returns how many records were dropped.
    pub(crate) fn discard(self) -> usize {
        self.staged.len()
    }
}

/// One concurrent session over a shared catalog. See the module docs.
pub struct Session {
    shared: SharedCatalog,
    /// Per-session query limits (own cancel token: cancelling this
    /// session never touches another).
    limits: GuardSpec,
    pinned_exec_mode: Option<ExecMode>,
    pinned_threads: Option<usize>,
    vector_mode: VectorMode,
    compile: CompileMode,
    txn: Option<TxnStage>,
}

impl Session {
    pub(crate) fn new(shared: SharedCatalog) -> Self {
        shared.register_session();
        Self {
            shared,
            limits: GuardSpec::default(),
            pinned_exec_mode: None,
            pinned_threads: None,
            vector_mode: VectorMode::default(),
            compile: CompileMode::from_env(),
            txn: None,
        }
    }

    /// Runs one SQL statement. SELECTs read a single frozen snapshot (or
    /// the open transaction's working state); mutations autocommit
    /// durably, or stage when a transaction is open.
    pub fn sql(&mut self, sql: &str) -> Result<Table, KathError> {
        let stmt = kath_sql::parse_statement(sql).map_err(|e| KathError::Sql(e.into()))?;
        match stmt {
            Statement::Select(select) => {
                let guard = self.limits.guard();
                let result = match &self.txn {
                    Some(txn) => {
                        let work = txn.working();
                        let (mode, threads) = self.pick_strategy(work);
                        kath_sql::run_select_auto_guarded(
                            work,
                            &select,
                            "sql_result",
                            mode,
                            threads,
                            self.vector_mode,
                            self.compile,
                            &guard,
                        )
                    }
                    None => {
                        let snapshot = self.shared.snapshot();
                        let (mode, threads) = self.pick_strategy(&snapshot);
                        kath_sql::run_select_auto_guarded(
                            &snapshot,
                            &select,
                            "sql_result",
                            mode,
                            threads,
                            self.vector_mode,
                            self.compile,
                            &guard,
                        )
                    }
                };
                if self.limits.cancel.is_cancelled() {
                    self.limits.cancel.clear();
                }
                let (table, _stats) = result?;
                Ok(table)
            }
            stmt => {
                if let Some(txn) = &mut self.txn {
                    return Ok(txn.mutate(&stmt)?);
                }
                let snapshot = self.shared.snapshot();
                let record = kath_sql::plan_mutation(&snapshot, &stmt)?;
                drop(snapshot);
                let records = [record];
                Ok(self
                    .shared
                    .submit::<Table, SqlError>(&records, false, |c| {
                        kath_sql::apply_mutation(c, &records[0], "sql_result")
                    })?)
            }
        }
    }

    /// Mode + parallelism for one statement: the session's pins, or the
    /// cost model's choice from the snapshot's largest cardinality.
    fn pick_strategy(&self, catalog: &Catalog) -> (ExecMode, usize) {
        let max_rows = catalog
            .table_names()
            .iter()
            .filter_map(|n| catalog.get(n).ok())
            .map(|t| t.len())
            .max()
            .unwrap_or(0);
        let mode = self
            .pinned_exec_mode
            .unwrap_or_else(|| preferred_exec_mode(max_rows));
        let threads = self.pinned_threads.unwrap_or_else(|| match mode {
            ExecMode::Volcano => 1,
            batched => preferred_parallelism(max_rows, batched),
        });
        (mode, threads)
    }

    /// Opens an explicit transaction (errors if one is already open).
    pub fn begin(&mut self) -> Result<(), KathError> {
        if self.txn.is_some() {
            return Err(KathError::Txn(
                "a transaction is already open (commit or rollback it first)".to_string(),
            ));
        }
        self.txn = Some(TxnStage::new(&self.shared.snapshot()));
        Ok(())
    }

    /// Commits the open transaction; returns the committed record count.
    pub fn commit(&mut self) -> Result<usize, KathError> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| KathError::Txn("no open transaction to commit".to_string()))?;
        Ok(txn.commit(&self.shared)?)
    }

    /// Discards the open transaction; returns the dropped record count.
    pub fn rollback(&mut self) -> Result<usize, KathError> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| KathError::Txn("no open transaction to roll back".to_string()))?;
        Ok(txn.discard())
    }

    /// Whether an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// The catalog version the next snapshot read would see (or the open
    /// transaction's base version).
    pub fn snapshot_version(&self) -> u64 {
        match &self.txn {
            Some(txn) => txn.base_version(),
            None => self.shared.version(),
        }
    }

    /// Fires this session's cancel token. One-shot: it re-arms after the
    /// cancelled statement returns. Other sessions are unaffected — each
    /// session owns a private token.
    pub fn cancel(&self) {
        self.limits.cancel.cancel();
    }

    /// A clonable handle to **this session's** cancel token, for firing
    /// [`Session::cancel`] from another thread while a query runs.
    /// Firing it never cancels any other session's statement.
    pub fn cancel_handle(&self) -> CancelToken {
        self.limits.cancel.clone()
    }

    /// Sets (or clears) this session's per-query wall-clock timeout.
    pub fn set_query_timeout(&mut self, timeout: Option<std::time::Duration>) {
        self.limits.timeout = timeout;
    }

    /// Sets (or clears) this session's per-query output budgets.
    pub fn set_query_budget(&mut self, rows: Option<u64>, bytes: Option<u64>) {
        self.limits.row_budget = rows;
        self.limits.byte_budget = bytes;
    }

    /// Pins this session's execution mode.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.pinned_exec_mode = Some(mode);
    }

    /// Reverts this session to cost-model mode selection.
    pub fn auto_exec_mode(&mut self) {
        self.pinned_exec_mode = None;
    }

    /// Pins this session's degree of parallelism.
    pub fn set_parallelism(&mut self, n: usize) {
        self.pinned_threads = Some(n.max(1));
    }

    /// Sets this session's vector access-path policy.
    pub fn set_vector_mode(&mut self, mode: VectorMode) {
        self.vector_mode = mode;
    }

    /// Sets this session's pipeline-compilation policy.
    pub fn set_compile_mode(&mut self, mode: CompileMode) {
        self.compile = mode;
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.shared.unregister_session();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KathDB;
    use kath_storage::StorageError;

    fn assert_send<T: Send>() {}

    #[test]
    fn sessions_are_send() {
        assert_send::<Session>();
    }

    #[test]
    fn session_count_tracks_live_handles() {
        let db = KathDB::new(42);
        assert_eq!(db.sessions(), 0);
        let s1 = db.session();
        let s2 = db.session();
        assert_eq!(db.sessions(), 2);
        drop(s1);
        assert_eq!(db.sessions(), 1);
        drop(s2);
        assert_eq!(db.sessions(), 0);
    }

    #[test]
    fn snapshot_reads_are_stable_while_another_session_commits() {
        let mut db = KathDB::new(42);
        db.sql("CREATE TABLE t (x INT)").unwrap();
        db.sql("INSERT INTO t VALUES (1), (2)").unwrap();
        let mut reader = db.session();
        let mut writer = db.session();
        // The reader's transaction freezes its snapshot at BEGIN.
        reader.begin().unwrap();
        assert_eq!(reader.sql("SELECT * FROM t").unwrap().len(), 2);
        writer.sql("INSERT INTO t VALUES (3)").unwrap();
        // Inside the transaction: still the begin-time version.
        assert_eq!(reader.sql("SELECT * FROM t").unwrap().len(), 2);
        reader.commit().unwrap();
        // Outside: the next statement takes a fresh snapshot.
        assert_eq!(reader.sql("SELECT * FROM t").unwrap().len(), 3);
    }

    #[test]
    fn staged_mutations_are_invisible_until_commit_and_read_your_writes() {
        let mut db = KathDB::new(42);
        db.sql("CREATE TABLE t (x INT)").unwrap();
        let mut a = db.session();
        let mut b = db.session();
        a.begin().unwrap();
        a.sql("INSERT INTO t VALUES (7)").unwrap();
        // A sees its own staged write; B and the facade do not.
        assert_eq!(a.sql("SELECT * FROM t").unwrap().len(), 1);
        assert_eq!(b.sql("SELECT * FROM t").unwrap().len(), 0);
        assert_eq!(db.sql("SELECT * FROM t").unwrap().len(), 0);
        let committed = a.commit().unwrap();
        assert_eq!(committed, 1);
        assert_eq!(b.sql("SELECT * FROM t").unwrap().len(), 1);
        assert_eq!(db.sql("SELECT * FROM t").unwrap().len(), 1);
    }

    #[test]
    fn rollback_discards_staged_mutations() {
        let mut db = KathDB::new(42);
        db.sql("CREATE TABLE t (x INT)").unwrap();
        let mut s = db.session();
        s.begin().unwrap();
        s.sql("INSERT INTO t VALUES (1)").unwrap();
        s.sql("INSERT INTO t VALUES (2)").unwrap();
        assert_eq!(s.rollback().unwrap(), 2);
        assert_eq!(s.sql("SELECT * FROM t").unwrap().len(), 0);
        assert!(!s.in_transaction());
        // Txn-control misuse errors cleanly.
        assert!(matches!(s.commit(), Err(KathError::Txn(_))));
        s.begin().unwrap();
        assert!(matches!(s.begin(), Err(KathError::Txn(_))));
        s.rollback().unwrap();
    }

    #[test]
    fn first_committer_wins_on_conflicting_ddl() {
        let mut db = KathDB::new(42);
        let mut a = db.session();
        let mut b = db.session();
        a.begin().unwrap();
        b.begin().unwrap();
        a.sql("CREATE TABLE dup (x INT)").unwrap();
        b.sql("CREATE TABLE dup (x INT)").unwrap();
        a.commit().unwrap();
        // B's commit re-validates against the head: the table now exists.
        let err = b.commit().unwrap_err();
        assert!(matches!(err, KathError::Sql(_)), "{err:?}");
        // The failed commit published nothing extra and B is usable again.
        assert_eq!(db.sql("SELECT * FROM dup").unwrap().len(), 0);
        b.sql("INSERT INTO dup VALUES (1)").unwrap();
        assert_eq!(db.sql("SELECT * FROM dup").unwrap().len(), 1);
    }

    #[test]
    fn cancel_is_per_session_not_global() {
        let mut db = KathDB::new(42);
        db.sql("CREATE TABLE t (x INT)").unwrap();
        db.sql("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        let mut a = db.session();
        let mut b = db.session();
        // Fire A's token: A's next statement aborts, B's runs untouched.
        a.cancel_handle().cancel();
        let err = a.sql("SELECT * FROM t").unwrap_err();
        assert!(
            matches!(
                err,
                KathError::Sql(SqlError::Storage(StorageError::Cancelled(_)))
            ),
            "{err:?}"
        );
        assert_eq!(b.sql("SELECT * FROM t").unwrap().len(), 3);
        // A's token re-armed; the facade's token is a third, also
        // independent, one.
        assert_eq!(a.sql("SELECT * FROM t").unwrap().len(), 3);
        db.cancel();
        assert_eq!(a.sql("SELECT * FROM t").unwrap().len(), 3);
        assert_eq!(b.sql("SELECT * FROM t").unwrap().len(), 3);
    }

    #[test]
    fn parallel_writers_and_readers_settle_consistently() {
        let mut db = KathDB::new(42);
        db.sql("CREATE TABLE log (w INT, seq INT)").unwrap();
        let writers = 4;
        let commits = 8;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let mut s = db.session();
                scope.spawn(move || {
                    for seq in 0..commits {
                        s.begin().unwrap();
                        s.sql(&format!("INSERT INTO log VALUES ({w}, {seq})"))
                            .unwrap();
                        s.commit().unwrap();
                    }
                });
            }
            let mut r = db.session();
            scope.spawn(move || {
                for _ in 0..20 {
                    // Every snapshot is internally consistent: row count
                    // matches a committed prefix (never torn mid-commit).
                    let n = r.sql("SELECT * FROM log").unwrap().len();
                    assert!(n <= writers * commits);
                }
            });
        });
        let total = db.sql("SELECT * FROM log").unwrap().len();
        assert_eq!(total, writers * commits);
    }
}
