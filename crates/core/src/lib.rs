//! # KathDB
//!
//! An explainable multimodal database management system with human-AI
//! collaboration — a from-scratch Rust reproduction of the CIDR 2026 vision
//! paper. This facade crate wires the full pipeline together:
//!
//! 1. **Parse** (`kath-parser`): NL query → clarifications → query sketch →
//!    logical plan (function signatures in the exact Fig. 3 JSON layout) →
//!    agentic plan verification with database tool use.
//! 2. **Optimize** (`kath-optimizer`): logical rewrites, then the
//!    coder/profiler/critic loop generates, profiles, and selects versioned
//!    function bodies (FAO, §4).
//! 3. **Execute** (`kath-exec`): the engine runs the physical plan under
//!    the monitor (self-repair + semantic anomaly checks) while recording
//!    row/table-level lineage (§3).
//! 4. **Explain** (`kath-explain`): coarse pipeline and fine-grained
//!    per-tuple explanations over the provenance graph (§5).
//!
//! ```
//! use kathdb::KathDB;
//! use kath_data::mmqa_small;
//! use kath_model::ScriptedChannel;
//!
//! let mut db = KathDB::new(42);
//! db.load_corpus(&mmqa_small()).unwrap();
//! let channel = ScriptedChannel::new([
//!     "The movie plot contains scenes that are uncommon in real life",
//!     "Oh I prefer a more recent movie as well when scoring",
//!     "OK",
//! ]);
//! let result = db
//!     .query(
//!         "Sort the given films in the table by how exciting they are, \
//!          but the poster should be 'boring'",
//!         channel.as_ref(),
//!     )
//!     .unwrap();
//! assert_eq!(
//!     result.display_table().cell(0, "title").unwrap().as_str(),
//!     Some("Guilty by Suspicion")
//! );
//! ```

#![warn(missing_docs)]

use kath_data::MmqaCorpus;
use kath_exec::{ExecContext, ExecError, ExecReport, ExecutionEngine, PhysicalPlan};
use kath_explain::Explainer;
use kath_fao::FunctionRegistry;
use kath_json::to_string_pretty;
use kath_lineage::DataKind;
use kath_model::{SimLlm, TokenMeter, Usage, UserChannel};
use kath_optimizer::{compile, preferred_exec_mode, CompileOptions, CompileReport};
use kath_parser::{
    generate_logical_plan, LogicalPlan, NlParser, ParseOutcome, PlanVerifier, VerifierReport,
};
use kath_sql::{SqlError, Statement};
use kath_storage::{
    CompileMode, Durability, DurabilityStatus, ExecMode, PoolStatus, StorageError, Table, Value,
    VectorMode, WalRecord, DEFAULT_PAGE_ROWS,
};
use std::fmt;
use std::path::Path;

mod session;

pub use kath_data as data;
pub use kath_exec as exec;
pub use kath_explain as explain;
pub use kath_fao as fao;
pub use kath_json as json;
pub use kath_lineage as lineage;
pub use kath_media as media;
pub use kath_model as model;
pub use kath_multimodal as multimodal;
pub use kath_optimizer as optimizer;
pub use kath_parser as parser;
pub use kath_sql as sql;
pub use kath_storage as storage;
pub use kath_vector as vector;
pub use session::{Session, TxnStage};

/// Top-level errors.
#[derive(Debug)]
pub enum KathError {
    /// The plan verifier rejected the plan.
    PlanRejected(VerifierReport),
    /// Compilation or execution failed.
    Exec(ExecError),
    /// Storage failure (ingest).
    Storage(kath_storage::StorageError),
    /// Nothing has been executed yet.
    NoQueryRun,
    /// Registry persistence failure.
    Registry(kath_fao::RegistryError),
    /// Raw SQL failed (parse, plan, or execution).
    Sql(SqlError),
    /// A durability operation was requested but no directory is open.
    NotDurable,
    /// Transaction-control misuse: nested `begin`, or `commit`/`rollback`
    /// with no open transaction.
    Txn(String),
}

impl fmt::Display for KathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KathError::PlanRejected(r) => {
                write!(f, "plan rejected by verifier: {:?}", r.hints())
            }
            KathError::Exec(e) => write!(f, "{e}"),
            KathError::Storage(e) => write!(f, "{e}"),
            KathError::NoQueryRun => write!(f, "no query has been executed yet"),
            KathError::Registry(e) => write!(f, "{e}"),
            KathError::Sql(e) => write!(f, "{e}"),
            KathError::NotDurable => {
                write!(f, "no durable directory open (use KathDB::open or \\open)")
            }
            KathError::Txn(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for KathError {}

impl From<ExecError> for KathError {
    fn from(e: ExecError) -> Self {
        KathError::Exec(e)
    }
}

impl From<kath_storage::StorageError> for KathError {
    fn from(e: kath_storage::StorageError) -> Self {
        KathError::Storage(e)
    }
}

impl From<kath_fao::RegistryError> for KathError {
    fn from(e: kath_fao::RegistryError) -> Self {
        KathError::Registry(e)
    }
}

impl From<SqlError> for KathError {
    fn from(e: SqlError) -> Self {
        KathError::Sql(e)
    }
}

/// The result of one NL query, with every intermediate artifact exposed for
/// inspection (that exposure *is* the paper's thesis).
pub struct QueryResult {
    /// The final ranked table (all columns, including plumbing).
    pub table: Table,
    /// Parser artifacts: intent, sketch history, clarifications.
    pub parse: ParseOutcome,
    /// The verified logical plan.
    pub logical: LogicalPlan,
    /// The verifier's report.
    pub verification: VerifierReport,
    /// The optimizer's report (rewrites, critiques, selections).
    pub compile: CompileReport,
    /// The engine's report (repairs, anomalies, timings).
    pub exec: ExecReport,
}

impl QueryResult {
    /// A presentation view matching Fig. 6: `lid, title, year, final_score,
    /// boring` (whichever of those exist in the output).
    pub fn display_table(&self) -> Table {
        let wanted = ["lid", "title", "year", "final_score", "boring"];
        let schema = self.table.schema();
        let available: Vec<(usize, &str)> = wanted
            .iter()
            .filter_map(|w| schema.index_of(w).map(|i| (i, *w)))
            .collect();
        if available.is_empty() {
            return self.table.clone();
        }
        let proj = schema.project(&available.iter().map(|(i, _)| *i).collect::<Vec<_>>());
        let mut out = Table::new("final_results", proj);
        for row in self.table.rows() {
            let cells: Vec<Value> = available.iter().map(|(i, _)| row[*i].clone()).collect();
            out.push(cells).expect("projection preserves types");
        }
        out
    }

    /// The lid of the top-ranked tuple, if present.
    pub fn top_lid(&self) -> Option<i64> {
        let idx = self.table.schema().index_of("lid")?;
        self.table.rows().first().and_then(|r| r[idx].as_int())
    }
}

/// The database façade.
pub struct KathDB {
    ctx: ExecContext,
    registry: FunctionRegistry,
    last_plan: Option<PhysicalPlan>,
    /// Compiler options used for subsequent queries (exposed so examples and
    /// benches can inject faults or disable rewrites).
    pub compile_options: CompileOptions,
    /// Run the engine's semantic checks (fan-out detection).
    pub semantic_checks: bool,
    /// Pinned execution mode; `None` lets the cost model pick per query.
    pinned_exec_mode: Option<ExecMode>,
    /// Pinned degree of parallelism; `None` lets the cost model pick per
    /// query (startup cost per worker vs per-morsel win, capped at the
    /// host's cores).
    pinned_threads: Option<usize>,
    /// Durable-storage state when a directory is open (`None` = in-memory
    /// only, the historical behaviour).
    durability: Option<DurableState>,
    /// The facade's own open transaction (`\begin` … `\commit`), staged
    /// against the snapshot taken at [`KathDB::begin`].
    txn: Option<TxnStage>,
}

/// The function-registry payload as last logged or checkpointed (change
/// detection for `query()`). The durability coordinator itself lives inside
/// the shared catalog so concurrent sessions commit through one WAL.
struct DurableState {
    functions_json: String,
}

/// What [`KathDB::open_dir`] recovered from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryInfo {
    /// Tables restored from the snapshot.
    pub snapshot_tables: usize,
    /// WAL records replayed on top of the snapshot.
    pub wal_replayed: usize,
    /// Epoch of the snapshot that was loaded (0 = started empty).
    pub snapshot_epoch: u64,
}

impl KathDB {
    /// A fresh instance with the given model seed.
    ///
    /// The `KATHDB_THREADS` environment variable, when set, pins the degree
    /// of parallelism for the instance (`auto` or `0` keep cost-model
    /// selection) — the knob CI uses to run the whole suite serially and
    /// 4-wide. `KATHDB_POOL_PAGES` caps the buffer pool at that many
    /// decoded column pages (minimum 1) — the knob CI uses for its
    /// low-memory leg; results are identical at any budget.
    /// `KATHDB_COMPILE` (`on`/`off`/`auto`) sets the default
    /// pipeline-compilation policy — the knob CI uses to keep the
    /// interpreted operators independently exercised; results are
    /// identical in every mode.
    pub fn new(seed: u64) -> Self {
        let meter = TokenMeter::new();
        let pinned_threads = std::env::var("KATHDB_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|n| *n > 0);
        Self {
            ctx: ExecContext::new(SimLlm::new(seed, meter)),
            registry: FunctionRegistry::new(),
            last_plan: None,
            compile_options: CompileOptions::default(),
            semantic_checks: true,
            pinned_exec_mode: None,
            pinned_threads,
            durability: None,
            txn: None,
        }
    }

    /// Opens (creating if needed) a durable database directory: recovers
    /// the newest valid snapshot, replays the WAL tail (a torn final record
    /// is skipped, never an error), and arms write-ahead logging for every
    /// subsequent mutation. Uses the default model seed; call
    /// [`KathDB::new`] + [`KathDB::open_dir`] to pick a seed.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, KathError> {
        let mut db = KathDB::new(42);
        db.open_dir(dir)?;
        Ok(db)
    }

    /// Attaches a durable directory to this instance (the instance method
    /// behind [`KathDB::open`] and the REPL's `\open`). Any previously
    /// attached directory is closed (checkpointed) first. Recovered tables
    /// join the catalog (replacing same-named in-memory tables); if the
    /// session already holds state, an immediate checkpoint makes that
    /// state durable too. Returns what was recovered.
    pub fn open_dir(&mut self, dir: impl AsRef<Path>) -> Result<RecoveryInfo, KathError> {
        let dir = dir.as_ref();
        self.close()?;
        let pre_existing = !self.ctx.catalog.is_empty();
        let pool = self.ctx.catalog.pool();
        let (inner, recovered) = Durability::open(dir, &pool)?;
        let info = RecoveryInfo {
            snapshot_tables: recovered.tables.len(),
            wal_replayed: recovered.wal_records.len(),
            snapshot_epoch: recovered.snapshot_epoch,
        };
        // Stage recovery on copies: a failed open must leave the session
        // exactly as it was, never half-recovered. Only committed WAL
        // records reach us here — `Durability::open` filtered out any
        // framed transaction that never reached its `Commit` marker.
        let mut catalog = self.ctx.catalog.snapshot().catalog().clone();
        let mut registry = match &recovered.functions_json {
            Some(json) => Self::registry_from_json(json)?,
            None => self.registry.clone(),
        };
        let mut restored: Vec<String> = Vec::new();
        for table in recovered.tables {
            restored.push(table.name().to_string());
            catalog.register_or_replace(table);
        }
        for record in recovered.wal_records {
            match record {
                WalRecord::Functions(json) => registry = Self::registry_from_json(&json)?,
                // Replay tolerates re-creation: the record is newer than
                // whatever in-memory table holds the name.
                WalRecord::CreateTable(t) => {
                    restored.push(t.name().to_string());
                    catalog.register_or_replace(t);
                }
                other => {
                    kath_sql::apply_mutation(&mut catalog, &other, "recovered").map_err(|e| {
                        KathError::Storage(StorageError::Corrupt(format!(
                            "wal record does not apply to recovered state: {e}"
                        )))
                    })?;
                }
            }
        }
        // Publish the staged state as one new version (readers holding
        // older snapshots are unaffected), then give every restored table
        // a lineage ingest root: provenance bottoms out at the durable
        // directory, whether the table came from the snapshot or the log.
        self.ctx
            .catalog
            .install_recovered(catalog, inner, recovered.max_txid);
        self.registry = registry;
        for name in restored {
            if self.ctx.catalog.contains(&name) && self.ctx.table_lid(&name).is_none() {
                let uri = format!("kathdb://{}/{name}", dir.display());
                let lid = self.ctx.lineage.alloc_lid();
                self.ctx
                    .lineage
                    .record(lid, None, Some(uri), "ingest", 1, DataKind::Table)
                    .map_err(|e| KathError::Exec(ExecError::Lineage(e.to_string())))?;
                self.ctx.table_lids.insert(name, lid);
            }
        }
        let functions_json = to_string_pretty(&self.registry.to_json());
        self.durability = Some(DurableState { functions_json });
        if pre_existing {
            self.checkpoint()?;
        }
        Ok(info)
    }

    fn registry_from_json(json: &str) -> Result<FunctionRegistry, KathError> {
        let value = kath_json::parse(json).map_err(|e| {
            KathError::Storage(StorageError::Corrupt(format!(
                "persisted function registry is not valid JSON: {e}"
            )))
        })?;
        Ok(FunctionRegistry::from_json(&value)?)
    }

    /// Runs one SQL statement against the catalog. SELECTs execute in the
    /// active execution mode against one frozen catalog snapshot (or the
    /// open transaction's working state — read-your-writes) and return the
    /// result table. CREATE TABLE / INSERT / DROP TABLE autocommit: they
    /// are validated against the snapshot, made durable through the
    /// group-commit WAL when a directory is open, and only then published.
    /// Inside [`KathDB::begin`]…[`KathDB::commit`] mutations stage locally
    /// instead and hit the log as one framed transaction at commit.
    pub fn sql(&mut self, sql: &str) -> Result<Table, KathError> {
        let stmt = kath_sql::parse_statement(sql).map_err(|e| KathError::Sql(e.into()))?;
        match stmt {
            Statement::Select(select) => {
                let mode = self.exec_mode();
                let threads = self.threads();
                // Each statement mints a fresh guard: the deadline restarts
                // here, while the cancel token is the session's shared one.
                let guard = self.ctx.limits.guard();
                // One snapshot per statement: the whole SELECT reads a
                // single catalog version even while other sessions commit.
                let result = match &self.txn {
                    Some(txn) => kath_sql::run_select_auto_guarded(
                        txn.working(),
                        &select,
                        "sql_result",
                        mode,
                        threads,
                        self.ctx.vector_mode,
                        self.ctx.compile,
                        &guard,
                    ),
                    None => {
                        let snapshot = self.ctx.catalog.snapshot();
                        kath_sql::run_select_auto_guarded(
                            &snapshot,
                            &select,
                            "sql_result",
                            mode,
                            threads,
                            self.ctx.vector_mode,
                            self.ctx.compile,
                            &guard,
                        )
                    }
                };
                self.rearm_cancel();
                let (table, _stats) = result?;
                Ok(table)
            }
            stmt => {
                if let Some(txn) = &mut self.txn {
                    return Ok(txn.mutate(&stmt)?);
                }
                let snapshot = self.ctx.catalog.snapshot();
                let record = kath_sql::plan_mutation(&snapshot, &stmt)?;
                drop(snapshot);
                let records = [record];
                Ok(self
                    .ctx
                    .catalog
                    .submit::<Table, SqlError>(&records, false, |c| {
                        kath_sql::apply_mutation(c, &records[0], "sql_result")
                    })?)
            }
        }
    }

    /// Opens an explicit transaction on this facade: subsequent mutations
    /// stage against a private copy of the current snapshot (visible to
    /// this handle's own SELECTs, invisible to every other session) until
    /// [`KathDB::commit`] publishes them atomically or
    /// [`KathDB::rollback`] discards them.
    pub fn begin(&mut self) -> Result<(), KathError> {
        if self.txn.is_some() {
            return Err(KathError::Txn(
                "a transaction is already open (commit or rollback it first)".to_string(),
            ));
        }
        self.txn = Some(TxnStage::new(&self.ctx.catalog.snapshot()));
        Ok(())
    }

    /// Commits the open transaction: every staged mutation re-applies to
    /// the current catalog head (first committer wins on conflicts), the
    /// records hit the WAL as one `Begin..Commit` frame through the
    /// group-commit coordinator, and the new version publishes only once
    /// durable. Returns the number of committed records.
    pub fn commit(&mut self) -> Result<usize, KathError> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| KathError::Txn("no open transaction to commit".to_string()))?;
        Ok(txn.commit(&self.ctx.catalog)?)
    }

    /// Discards the open transaction's staged mutations. Returns how many
    /// records were dropped.
    pub fn rollback(&mut self) -> Result<usize, KathError> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| KathError::Txn("no open transaction to roll back".to_string()))?;
        Ok(txn.discard())
    }

    /// Whether an explicit transaction is open on this facade.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// A new concurrent session over this database's shared catalog: its
    /// own guard settings and cancel token, its own exec/vector/compile
    /// pins, its own transactions — reading MVCC snapshots and committing
    /// through the same group-commit WAL as everyone else. Sessions are
    /// `Send`: hand them to worker threads.
    pub fn session(&self) -> Session {
        Session::new(self.ctx.catalog.clone())
    }

    /// How many [`Session`] handles are currently live.
    pub fn sessions(&self) -> usize {
        self.ctx.catalog.session_count()
    }

    /// Writes a checkpoint: every catalog table plus the function registry
    /// into a fresh snapshot epoch (atomic rename), then rotates the WAL.
    /// Returns the new epoch. Errors with [`KathError::NotDurable`] when no
    /// directory is open.
    pub fn checkpoint(&mut self) -> Result<u64, KathError> {
        if self.durability.is_none() {
            return Err(KathError::NotDurable);
        }
        let functions_json = to_string_pretty(&self.registry.to_json());
        // The shared catalog drains in-flight commits, snapshots every
        // table, rotates the WAL, and publishes the paged representations
        // the checkpoint produced (identical rows, page-backed — the next
        // checkpoint rewrites only dirty pages).
        let epoch = self.ctx.catalog.checkpoint(Some(&functions_json))?;
        if let Some(d) = &mut self.durability {
            d.functions_json = functions_json;
        }
        Ok(epoch)
    }

    /// Checkpoints (when a durable directory is open) and detaches it.
    /// Safe to call repeatedly; a no-op for in-memory instances. Read-only
    /// sessions skip the snapshot: when no WAL record accumulated and the
    /// registry is unchanged since the last checkpoint, there is nothing
    /// to re-encode.
    pub fn close(&mut self) -> Result<(), KathError> {
        if let Some(d) = &self.durability {
            // Replayed tail records are already durable (they replay again
            // next open); only records appended since open, or an unlogged
            // registry change, warrant a closing snapshot.
            let dirty = self.ctx.catalog.wal_appended() > 0
                || to_string_pretty(&self.registry.to_json()) != d.functions_json;
            if dirty {
                self.checkpoint()?;
            }
        }
        self.durability = None;
        self.ctx.catalog.detach();
        Ok(())
    }

    /// Switches between group commit (the default: concurrent commits
    /// batch into shared fsyncs — leader syncs, followers wait on the
    /// durable LSN) and per-statement fsync (every commit pays its own
    /// sync — the baseline `txn_bench` measures group commit against).
    pub fn set_group_commit(&self, on: bool) {
        self.ctx.catalog.set_group_commit(on);
    }

    /// Whether group commit is enabled.
    pub fn group_commit(&self) -> bool {
        self.ctx.catalog.group_commit()
    }

    /// WAL / snapshot status of the open durable directory, if any —
    /// including the group-commit coordinator's live counters (batched
    /// fsyncs, commits acknowledged per fsync).
    pub fn durability_status(&self) -> Option<DurabilityStatus> {
        self.durability.as_ref()?;
        self.ctx.catalog.status()
    }

    /// Buffer-pool counters for this instance: budget, residency, hit /
    /// miss / eviction totals, and zone-map page skips.
    pub fn pool_status(&self) -> PoolStatus {
        self.ctx.catalog.pool().status()
    }

    /// Re-budgets the buffer pool to `pages` decoded column pages (minimum
    /// 1), evicting down immediately if over. Results are unaffected at any
    /// budget — only how much decoded data stays cached.
    pub fn set_pool_budget(&self, pages: usize) {
        self.ctx.catalog.set_pool_budget(pages);
    }

    /// Converts a catalog table to the out-of-core paged representation
    /// (compressed column pages served through the buffer pool). Contents
    /// are identical afterwards; returns whether a conversion happened
    /// (`false` if the table was already paged). Checkpoints do this
    /// automatically for every table.
    pub fn page_table(&mut self, name: &str) -> Result<bool, KathError> {
        Ok(self.ctx.catalog.page_table(name, DEFAULT_PAGE_ROWS)?)
    }

    /// Total dirty (not yet checkpointed) pages across paged catalog
    /// tables; resident tables are entirely "dirty" but not counted here.
    pub fn dirty_pages(&self) -> usize {
        let snapshot = self.ctx.catalog.snapshot();
        snapshot
            .table_names()
            .iter()
            .filter_map(|n| snapshot.get(n).ok())
            .filter_map(|t| t.paged().map(|p| p.dirty_pages()))
            .sum()
    }

    /// Logs the function registry to the WAL when it changed since the last
    /// log/checkpoint (called after every NL query; registries mutate
    /// through compilation and self-repair).
    fn log_registry_if_changed(&mut self) -> Result<(), KathError> {
        let json = to_string_pretty(&self.registry.to_json());
        match &self.durability {
            Some(d) if d.functions_json != json => {}
            _ => return Ok(()),
        }
        let records = [WalRecord::Functions(json.clone())];
        self.ctx
            .catalog
            .submit::<(), StorageError>(&records, false, |_| Ok(()))?;
        if let Some(d) = &mut self.durability {
            d.functions_json = json;
        }
        Ok(())
    }

    /// Pins the batch size for relational pipelines (batched execution).
    pub fn set_batch_size(&mut self, rows: usize) {
        self.pinned_exec_mode = Some(ExecMode::Batched(rows.max(1)));
    }

    /// Pins an execution mode (`ExecMode::Volcano` forces the row-at-a-time
    /// compatibility path).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.pinned_exec_mode = Some(mode);
    }

    /// Reverts to cost-model-driven execution-mode selection (the default):
    /// each query picks batched or Volcano from the cost estimates of its
    /// own physical plan.
    pub fn auto_exec_mode(&mut self) {
        self.pinned_exec_mode = None;
    }

    /// Sets the vector access-path policy for SQL similarity queries:
    /// `Auto` (cost model picks Flat vs IVF per query from catalog
    /// cardinality — the default), `Off` (always the full-sort plan), or a
    /// forced `Flat`/`Ivf`. The exact paths (`Off`, `Flat`, and `Auto`
    /// below the cost crossover) return identical rows; `Ivf` — including
    /// `Auto` above the crossover — trades exactness for speed: same row
    /// count, recall-tested (≥ 0.9 @ k=10) but not bit-identical ranking.
    pub fn set_vector_mode(&mut self, mode: VectorMode) {
        self.ctx.vector_mode = mode;
    }

    /// The active vector access-path policy.
    pub fn vector_mode(&self) -> VectorMode {
        self.ctx.vector_mode
    }

    /// Sets the pipeline-compilation policy for SQL queries: `Auto` (the
    /// default — compile exactly when the cost model's break-even rule says
    /// the one-time kernel compilation amortizes over the input
    /// cardinality), `On` (compile every eligible plan), or `Off` (always
    /// the interpreted operators). Plans the compiler cannot express —
    /// aggregates, ORDER BY, DISTINCT, LIMIT, vector top-k, index-hit
    /// scans, model-backed calls — fall back to interpreted execution under
    /// every policy, and compiled results are byte-identical to interpreted
    /// ones at any batch size or worker count.
    pub fn set_compile_mode(&mut self, mode: CompileMode) {
        self.ctx.compile = mode;
    }

    /// The active pipeline-compilation policy.
    pub fn compile_mode(&self) -> CompileMode {
        self.ctx.compile
    }

    /// Sets (or clears) the per-query wall-clock timeout. A query that
    /// outlives it aborts mid-scan with
    /// [`StorageError::Cancelled`] on whichever drive is running —
    /// Volcano, batched, morsel-parallel, or compiled — with partial
    /// state dropped and the catalog untouched; the next statement runs
    /// normally. The deadline is minted fresh at each statement's start.
    pub fn set_query_timeout(&mut self, timeout: Option<std::time::Duration>) {
        self.ctx.limits.timeout = timeout;
    }

    /// The active per-query timeout, if any.
    pub fn query_timeout(&self) -> Option<std::time::Duration> {
        self.ctx.limits.timeout
    }

    /// Sets (or clears) per-query output budgets: a query that produces
    /// more than `rows` root-level rows or `bytes` payload bytes aborts
    /// with [`StorageError::Budget`]. Budgets meter produced output, not
    /// intermediate operator traffic.
    pub fn set_query_budget(&mut self, rows: Option<u64>, bytes: Option<u64>) {
        self.ctx.limits.row_budget = rows;
        self.ctx.limits.byte_budget = bytes;
    }

    /// Fires the session cancel token: a query running on another thread
    /// (via [`KathDB::cancel_handle`]) aborts at its next guard check with
    /// [`StorageError::Cancelled`]. One-shot — the flag re-arms after the
    /// cancelled statement returns.
    pub fn cancel(&self) {
        self.ctx.limits.cancel.cancel();
    }

    /// A clonable handle to the session cancel token, for firing
    /// [`KathDB::cancel`] from another thread while a query runs.
    pub fn cancel_handle(&self) -> kath_storage::CancelToken {
        self.ctx.limits.cancel.clone()
    }

    /// Re-arms the session cancel token after a statement settles, so a
    /// fired token cancels exactly one statement.
    fn rearm_cancel(&self) {
        if self.ctx.limits.cancel.is_cancelled() {
            self.ctx.limits.cancel.clear();
        }
    }

    /// Installs a fault-injection plan on this database's I/O seam: every
    /// subsequent file operation (WAL appends, checkpoint writes, page
    /// reads) consults the plan and may fail with the injected error.
    /// **Test-only** — for exercising recovery paths from the REPL
    /// (`\faults`) and the chaos suites; see also the `KATHDB_FAULTS`
    /// environment variable.
    pub fn install_faults(&self, plan: kath_storage::FaultPlan) {
        self.ctx.catalog.pool().io().install_faults(plan);
    }

    /// Removes any installed fault plan (I/O goes back to the real
    /// backend).
    pub fn clear_faults(&self) {
        self.ctx.catalog.pool().io().clear_faults();
    }

    /// Describes the active I/O backend, with its injected/passed
    /// operation counters when a fault plan is installed.
    pub fn fault_status(&self) -> (String, Option<kath_storage::FaultStats>) {
        let pool = self.ctx.catalog.pool();
        let io = pool.io();
        (io.describe(), io.fault_stats())
    }

    /// Builds (or refreshes) the derived vector index over `table.column`,
    /// returning `(scored entries, unscored rows)`. The planner derives
    /// indexes on demand, so this is only needed to warm one up eagerly
    /// (e.g. from the REPL's `\vindex build`).
    pub fn build_vector_index(
        &mut self,
        table: &str,
        column: &str,
    ) -> Result<(usize, usize), KathError> {
        let ix = self.ctx.catalog.vector_index_for(table, column)?;
        Ok((ix.entries().len(), ix.unscored().len()))
    }

    /// Drops the derived vector index over `table.column`; returns whether
    /// one existed. (It re-derives on the next similarity query.)
    pub fn drop_vector_index(&mut self, table: &str, column: &str) -> bool {
        self.ctx.catalog.drop_vector_index(table, column)
    }

    /// Every derived vector index: `(table, column, scored, unscored)`.
    pub fn vector_index_status(&self) -> Vec<(String, String, usize, usize)> {
        let mut out = Vec::new();
        let names: Vec<String> = self.ctx.catalog.table_names();
        for table in names {
            for column in self.ctx.catalog.vector_indexed_columns(&table) {
                if let Some(ix) = self.ctx.catalog.vector_index_on(&table, &column) {
                    out.push((
                        table.clone(),
                        column,
                        ix.entries().len(),
                        ix.unscored().len(),
                    ));
                }
            }
        }
        out
    }

    /// Pins the degree of intra-query parallelism: SQL pipelines run their
    /// streaming phase with `n` morsel workers (min 1). Results are
    /// identical to serial execution at any setting.
    pub fn set_parallelism(&mut self, n: usize) {
        self.pinned_threads = Some(n.max(1));
    }

    /// Reverts to cost-model-driven parallelism (the default): each query
    /// weighs per-worker startup cost against the per-morsel win over its
    /// own input cardinality, capped at the host's cores.
    pub fn auto_parallelism(&mut self) {
        self.pinned_threads = None;
    }

    /// The degree of parallelism the next query will run with. Under auto
    /// selection this previews the choice from current catalog
    /// cardinalities; the per-query decision uses the compiled plan's own
    /// input cardinality.
    pub fn threads(&self) -> usize {
        self.pinned_threads.unwrap_or_else(|| {
            let max_rows = self.max_catalog_rows();
            match self.exec_mode() {
                ExecMode::Volcano => 1,
                batched => kath_optimizer::preferred_parallelism(max_rows, batched),
            }
        })
    }

    fn max_catalog_rows(&self) -> usize {
        self.ctx
            .catalog
            .table_names()
            .iter()
            .filter_map(|n| self.ctx.catalog.get(n).ok())
            .map(|t| t.len())
            .max()
            .unwrap_or(0)
    }

    /// Degree-of-parallelism selection for one compiled plan: the pinned
    /// value, or the cost model's break-even worker count for the plan's
    /// largest input cardinality in the chosen mode.
    fn select_parallelism(&self, plan: &PhysicalPlan, mode: ExecMode) -> usize {
        if let Some(n) = self.pinned_threads {
            return n;
        }
        if matches!(mode, ExecMode::Volcano) {
            return 1;
        }
        let snapshot = self.ctx.catalog.snapshot();
        let mut max_input_rows = 0usize;
        for node in &plan.nodes {
            if let Ok(entry) = self.registry.get(&node.func_id) {
                for input in entry.active_version().body.inputs() {
                    if let Ok(t) = snapshot.get(&input) {
                        max_input_rows = max_input_rows.max(t.len());
                    }
                }
            }
        }
        kath_optimizer::preferred_parallelism(max_input_rows, mode)
    }

    /// The execution mode the next query will run with. Under auto
    /// selection this previews the choice from current catalog
    /// cardinalities; the per-query decision additionally weighs the
    /// compiled plan's own cost estimates (see [`KathDB::query`]).
    pub fn exec_mode(&self) -> ExecMode {
        self.pinned_exec_mode
            .unwrap_or_else(|| preferred_exec_mode(self.max_catalog_rows()))
    }

    /// Physical execution-mode selection for one compiled plan: compares
    /// the cost model's mode-aware estimates (per-row Volcano dispatch vs
    /// per-batch amortization) summed over the plan's profiled functions;
    /// falls back to the plan's largest *input* cardinality when no node is
    /// profiled yet.
    fn select_exec_mode(&self, plan: &PhysicalPlan) -> ExecMode {
        if let Some(mode) = self.pinned_exec_mode {
            return mode;
        }
        let batched = ExecMode::default();
        let snapshot = self.ctx.catalog.snapshot();
        let (mut volcano_ms, mut batched_ms, mut profiled) = (0.0, 0.0, false);
        let mut max_input_rows = 0usize;
        for node in &plan.nodes {
            let v = kath_optimizer::estimate_function_in_mode(
                &self.registry,
                &snapshot,
                &node.func_id,
                ExecMode::Volcano,
            );
            let b = kath_optimizer::estimate_function_in_mode(
                &self.registry,
                &snapshot,
                &node.func_id,
                batched,
            );
            if let (Some(v), Some(b)) = (v, b) {
                volcano_ms += v.runtime_ms;
                batched_ms += b.runtime_ms;
                profiled = true;
            }
            if let Ok(entry) = self.registry.get(&node.func_id) {
                for input in entry.active_version().body.inputs() {
                    if let Ok(t) = snapshot.get(&input) {
                        max_input_rows = max_input_rows.max(t.len());
                    }
                }
            }
        }
        if profiled {
            if batched_ms <= volcano_ms {
                batched
            } else {
                ExecMode::Volcano
            }
        } else {
            preferred_exec_mode(max_input_rows)
        }
    }

    /// Ingests an MMQA-like corpus: the base table plus its media. The
    /// table rides the WAL when a durable directory is open; media
    /// descriptors are in-memory only until the next checkpoint-capturing
    /// release (they are re-registered by `load_corpus` on restart: when
    /// the base table was already recovered from disk, only the media
    /// registration runs — the recovered rows win).
    pub fn load_corpus(&mut self, corpus: &MmqaCorpus) -> Result<(), KathError> {
        if !self.ctx.catalog.contains(corpus.movies.name()) {
            self.load_table(corpus.movies.clone(), "file://data/movie_table")?;
        }
        for d in &corpus.documents {
            self.ctx.media.add_document(d.clone());
        }
        for i in &corpus.images {
            self.ctx.media.add_image(i.clone());
        }
        Ok(())
    }

    /// Ingests an arbitrary base table. When a durable directory is open
    /// the full contents are logged write-ahead, so the ingest survives a
    /// crash even before the next checkpoint.
    pub fn load_table(&mut self, table: Table, src_uri: &str) -> Result<(), KathError> {
        if self.ctx.catalog.contains(table.name()) {
            return Err(KathError::Storage(StorageError::TableExists(
                table.name().to_string(),
            )));
        }
        let name = table.name().to_string();
        let records: Vec<WalRecord> = if self.durability.is_some() {
            vec![WalRecord::CreateTable(table.clone())]
        } else {
            Vec::new()
        };
        self.ctx
            .catalog
            .submit::<(), StorageError>(&records, false, move |c| c.register(table).map(|_| ()))?;
        let lid = self.ctx.lineage.alloc_lid();
        self.ctx
            .lineage
            .record(
                lid,
                None,
                Some(src_uri.to_string()),
                "ingest",
                1,
                DataKind::Table,
            )
            .map_err(|e| KathError::Exec(ExecError::Lineage(e.to_string())))?;
        self.ctx.table_lids.insert(name, lid);
        Ok(())
    }

    /// Runs the full interactive pipeline on an NL query.
    pub fn query(&mut self, nl: &str, channel: &dyn UserChannel) -> Result<QueryResult, KathError> {
        // 1. Interactive parse (proactive clarification + reactive
        //    correction).
        let parser = NlParser::new(self.ctx.llm.clone());
        let parse = parser.parse(nl, channel);

        // 2. Logical plan generation + agentic verification (over one
        //    frozen catalog snapshot).
        let logical = generate_logical_plan(&parse.sketch, "movie_table");
        let verify_snapshot = self.ctx.catalog.snapshot();
        let verifier = PlanVerifier::new(&verify_snapshot);
        let (logical, verification) = verifier.verify(logical);
        if !verification.approved {
            return Err(KathError::PlanRejected(verification));
        }

        // 3. Compile: coder/profiler/critic, rewrites, selection.
        let compile_report = compile(
            &logical,
            &self.ctx,
            &mut self.registry,
            &parse.clarifications,
            &self.compile_options,
        )?;

        // 4. Execute under the monitor, in the selected execution strategy
        //    (pinned, or the cost model's mode- and parallelism-aware
        //    estimate for this plan's profiled functions and input
        //    cardinalities).
        self.ctx.exec_mode = self.select_exec_mode(&compile_report.physical);
        self.ctx.threads = self.select_parallelism(&compile_report.physical, self.ctx.exec_mode);
        let engine = ExecutionEngine {
            semantic_checks: self.semantic_checks,
            ..ExecutionEngine::new()
        };
        let exec_report = engine.run(
            &mut self.ctx,
            &mut self.registry,
            &compile_report.physical,
            channel,
        );
        self.rearm_cancel();
        let exec_report = exec_report?;

        self.last_plan = Some(compile_report.physical.clone());
        // Compilation and self-repair may have added function versions;
        // make the registry durable before acknowledging the query.
        self.log_registry_if_changed()?;
        Ok(QueryResult {
            table: exec_report.final_table.clone(),
            parse,
            logical,
            verification,
            compile: compile_report,
            exec: exec_report,
        })
    }

    /// Answers an NL explanation question about the last query (§5):
    /// `"explain the pipeline"`, `"explain tuple <lid>"`, ….
    pub fn explain(&self, question: &str) -> Result<String, KathError> {
        let plan = self.last_plan.as_ref().ok_or(KathError::NoQueryRun)?;
        let snapshot = self.ctx.catalog.snapshot();
        let explainer = Explainer::new(plan, &self.registry, &self.ctx.lineage, &snapshot);
        Ok(explainer.answer(question))
    }

    /// Total simulated token usage so far.
    pub fn token_usage(&self) -> Usage {
        self.ctx.llm.meter().usage()
    }

    /// Persists every generated function (all versions) to disk (§1:
    /// "these functions are persisted locally on disk").
    pub fn save_functions(&self, path: &Path) -> Result<(), KathError> {
        self.registry.save(path)?;
        Ok(())
    }

    /// The function registry (read access for inspection).
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// The execution context (read access: catalog, lineage, media).
    pub fn context(&self) -> &ExecContext {
        &self.ctx
    }

    /// Mutable execution context (benches inject lineage policies).
    pub fn context_mut(&mut self) -> &mut ExecContext {
        &mut self.ctx
    }

    /// The Table-3 lineage relation for the current session.
    pub fn lineage_table(&self) -> Result<Table, KathError> {
        self.ctx
            .lineage
            .as_table()
            .map_err(|e| KathError::Exec(ExecError::Lineage(e.to_string())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_data::mmqa_small;
    use kath_model::ScriptedChannel;

    const FLAGSHIP: &str = "Sort the given films in the table by how exciting \
                            they are, but the poster should be 'boring'";

    fn run_flagship() -> (KathDB, QueryResult) {
        let mut db = KathDB::new(42);
        db.load_corpus(&mmqa_small()).unwrap();
        let channel = ScriptedChannel::new([
            "The movie plot contains scenes that are uncommon in real life",
            "Oh I prefer a more recent movie as well when scoring",
            "OK",
        ]);
        let result = db.query(FLAGSHIP, channel.as_ref()).unwrap();
        (db, result)
    }

    fn durable_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kathdb_core_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// The newest WAL segment file of a durable directory.
    fn active_segment(dir: &Path) -> std::path::PathBuf {
        let mut segs: Vec<_> = std::fs::read_dir(dir.join("wal"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "log"))
            .collect();
        segs.sort();
        segs.pop().expect("at least one wal segment")
    }

    #[test]
    fn durable_sql_survives_crash_and_torn_tail() {
        let dir = durable_dir("crash");
        let committed;
        let before_last;
        {
            // Populate via SQL, checkpoint mid-stream, keep writing, then
            // "crash" (drop without close: nothing is flushed beyond what
            // the WAL already fsynced).
            let mut db = KathDB::open(&dir).unwrap();
            db.sql("CREATE TABLE kv (k INT, v STR)").unwrap();
            db.sql("INSERT INTO kv VALUES (1, 'a'), (2, 'b')").unwrap();
            assert_eq!(db.checkpoint().unwrap(), 1);
            db.sql("INSERT INTO kv VALUES (3, 'c')").unwrap();
            before_last = db.sql("SELECT * FROM kv ORDER BY k").unwrap();
            db.sql("INSERT INTO kv VALUES (4, 'd')").unwrap();
            committed = db.sql("SELECT * FROM kv ORDER BY k").unwrap();
            let status = db.durability_status().unwrap();
            assert_eq!(status.snapshot_epoch, 1);
            assert_eq!(status.wal_records, 2);
        }
        {
            // Reopen: byte-identical state.
            let mut db = KathDB::open(&dir).unwrap();
            assert_eq!(db.sql("SELECT * FROM kv ORDER BY k").unwrap(), committed);
        }
        // Tear the final WAL record (simulates a crash mid-append): the
        // torn record is skipped, everything before it survives.
        let seg = active_segment(&dir);
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        {
            let mut db = KathDB::open(&dir).unwrap();
            assert_eq!(db.sql("SELECT * FROM kv ORDER BY k").unwrap(), before_last);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn durable_drop_table_survives_reopen() {
        let dir = durable_dir("drop");
        {
            let mut db = KathDB::open(&dir).unwrap();
            db.sql("CREATE TABLE gone (x INT)").unwrap();
            db.sql("CREATE TABLE kept (x INT)").unwrap();
            db.sql("INSERT INTO kept VALUES (7)").unwrap();
            db.sql("DROP TABLE gone").unwrap();
        }
        let mut db = KathDB::open(&dir).unwrap();
        assert!(!db.context().catalog.contains("gone"));
        assert!(db.sql("SELECT * FROM gone").is_err());
        let kept = db.sql("SELECT * FROM kept").unwrap();
        assert_eq!(kept.cell(0, "x").unwrap().as_int(), Some(7));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corpus_and_functions_survive_reopen() {
        let dir = durable_dir("functions");
        {
            let mut db = KathDB::open(&dir).unwrap();
            db.load_corpus(&mmqa_small()).unwrap();
            let channel = ScriptedChannel::new([
                "The movie plot contains scenes that are uncommon in real life",
                "Oh I prefer a more recent movie as well when scoring",
                "OK",
            ]);
            db.query(FLAGSHIP, channel.as_ref()).unwrap();
            // Crash: no close, no checkpoint. The corpus ingest and the
            // registry changes were WAL-logged.
        }
        let mut db = KathDB::open(&dir).unwrap();
        assert!(db.registry().contains("classify_boring"));
        assert!(db.registry().contains("gen_excitement_score"));
        assert_eq!(db.context().catalog.get("movie_table").unwrap().len(), 6);
        // The documented restart workflow: load_corpus again to re-register
        // the media descriptors. The recovered base table wins (no
        // TableExists error), and the full NL pipeline runs end to end.
        db.load_corpus(&mmqa_small()).unwrap();
        let channel = ScriptedChannel::new([
            "The movie plot contains scenes that are uncommon in real life",
            "Oh I prefer a more recent movie as well when scoring",
            "OK",
        ]);
        let result = db.query(FLAGSHIP, channel.as_ref()).unwrap();
        assert_eq!(
            result.display_table().cell(0, "title").unwrap().as_str(),
            Some("Guilty by Suspicion")
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn attaching_a_dir_checkpoints_preexisting_state() {
        let dir = durable_dir("attach");
        {
            let mut db = KathDB::new(42);
            db.load_corpus(&mmqa_small()).unwrap();
            let info = db.open_dir(&dir).unwrap();
            assert_eq!(info.snapshot_tables, 0);
            // The attach checkpointed the already-loaded corpus.
            assert_eq!(db.durability_status().unwrap().snapshot_epoch, 1);
        }
        let db = KathDB::open(&dir).unwrap();
        assert_eq!(db.context().catalog.get("movie_table").unwrap().len(), 6);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn close_checkpoints_and_detaches() {
        let dir = durable_dir("close");
        let mut db = KathDB::open(&dir).unwrap();
        db.sql("CREATE TABLE t (x INT)").unwrap();
        db.close().unwrap();
        assert!(db.durability_status().is_none());
        assert!(matches!(db.checkpoint(), Err(KathError::NotDurable)));
        // Close is idempotent, and further mutations are in-memory only.
        db.close().unwrap();
        let db2 = KathDB::open(&dir).unwrap();
        assert!(db2.context().catalog.contains("t"));
        drop(db2);
        // A read-only session writes no new snapshot on close.
        let mut db3 = KathDB::open(&dir).unwrap();
        let epoch = db3.durability_status().unwrap().snapshot_epoch;
        db3.sql("SELECT * FROM t").unwrap();
        db3.close().unwrap();
        let db4 = KathDB::open(&dir).unwrap();
        assert_eq!(db4.durability_status().unwrap().snapshot_epoch, epoch);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn switching_dirs_checkpoints_the_first() {
        let dir1 = durable_dir("switch1");
        let dir2 = durable_dir("switch2");
        let mut db = KathDB::open(&dir1).unwrap();
        db.sql("CREATE TABLE a (x INT)").unwrap();
        db.sql("INSERT INTO a VALUES (1)").unwrap();
        // Switching detaches dir1 with a final checkpoint before attaching
        // dir2 (which then checkpoints the carried-over state too).
        db.open_dir(&dir2).unwrap();
        db.sql("INSERT INTO a VALUES (2)").unwrap();
        drop(db);
        let mut db1 = KathDB::open(&dir1).unwrap();
        assert_eq!(db1.sql("SELECT * FROM a").unwrap().len(), 1);
        let mut db2 = KathDB::open(&dir2).unwrap();
        assert_eq!(db2.sql("SELECT * FROM a").unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(dir1);
        let _ = std::fs::remove_dir_all(dir2);
    }

    /// The out-of-core acceptance demo: a table larger than the buffer-pool
    /// budget streams through evictions byte-identically, a one-row INSERT
    /// makes the next checkpoint incremental (strictly fewer bytes), and a
    /// crash recovers exactly the committed state.
    #[test]
    fn out_of_core_workload_is_byte_identical_and_incremental() {
        let dir = durable_dir("outofcore");
        let mut db = KathDB::new(42);
        db.sql("CREATE TABLE big (id INT, grp STR, score FLOAT)")
            .unwrap();
        // 5000 rows → two pages per column at the default page size; the
        // x.5 floats keep every SUM exact regardless of addition order.
        for chunk in 0..10i64 {
            let rows: Vec<String> = (0..500i64)
                .map(|i| {
                    let id = chunk * 500 + i;
                    format!("({id}, 'g{}', {}.5)", id % 7, id % 100)
                })
                .collect();
            db.sql(&format!("INSERT INTO big VALUES {}", rows.join(", ")))
                .unwrap();
        }
        let queries = [
            "SELECT grp, COUNT(*) AS n, SUM(score) AS s FROM big GROUP BY grp ORDER BY grp",
            "SELECT id, score FROM big WHERE id >= 4990 ORDER BY id",
            "SELECT COUNT(*) AS n FROM big WHERE grp = 'g3'",
        ];
        let resident: Vec<Table> = queries.iter().map(|q| db.sql(q).unwrap()).collect();

        // Attaching a durable dir checkpoints the pre-existing state, which
        // swaps every table to its paged representation.
        db.open_dir(&dir).unwrap();
        assert!(db.context().catalog.get("big").unwrap().is_paged());
        let first = db.durability_status().unwrap().last_checkpoint.unwrap();
        assert!(first.pages_written >= 6, "3 columns x 2 pages: {first:?}");

        // Cap the pool below the table's page count: the same workload must
        // stream pages through evictions and still match byte for byte.
        db.set_pool_budget(2);
        for (q, want) in queries.iter().zip(&resident) {
            let got = db.sql(q).unwrap();
            assert_eq!(got.rows(), want.rows(), "paged result diverged: {q}");
        }
        let status = db.pool_status();
        assert!(status.evictions > 0, "no evictions under a 2-page budget");
        assert!(status.resident_pages <= 2, "{status:?}");

        // One appended row dirties only the tail page of each column, so
        // the second checkpoint is incremental: strictly fewer bytes.
        db.sql("INSERT INTO big VALUES (5000, 'g0', 1.5)").unwrap();
        db.checkpoint().unwrap();
        let second = db.durability_status().unwrap().last_checkpoint.unwrap();
        assert!(second.bytes_written > 0);
        assert!(
            second.bytes_written < first.bytes_written,
            "second checkpoint not incremental: {second:?} vs {first:?}"
        );
        assert!(second.pages_written < first.pages_written);
        assert!(second.pages_reused > 0);

        // Crash (no close): one more WAL-only insert, then recovery must
        // reproduce exactly the committed result set.
        db.sql("INSERT INTO big VALUES (5001, 'g1', 2.5)").unwrap();
        let committed: Vec<Table> = queries.iter().map(|q| db.sql(q).unwrap()).collect();
        drop(db);
        let mut db2 = KathDB::open(&dir).unwrap();
        for (q, want) in queries.iter().zip(&committed) {
            let got = db2.sql(q).unwrap();
            assert_eq!(got.rows(), want.rows(), "recovered result diverged: {q}");
        }
        let n = db2.sql("SELECT COUNT(*) AS n FROM big").unwrap();
        assert_eq!(n.rows()[0][0], Value::Int(5002));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn failed_open_leaves_the_session_untouched() {
        let dir = durable_dir("failedopen");
        {
            // A log that disagrees with its (absent) snapshot: an INSERT
            // into a table that was never created.
            let pool = std::sync::Arc::new(kath_storage::BufferPool::with_budget(16));
            let (mut d, _) = Durability::open(&dir, &pool).unwrap();
            d.log(&WalRecord::Insert {
                table: "ghost".into(),
                rows: vec![vec![Value::Int(1)]],
            })
            .unwrap();
        }
        let mut db = KathDB::new(42);
        db.load_corpus(&mmqa_small()).unwrap();
        let tables_before = db.context().catalog.len();
        let functions_before = db.registry().len();
        assert!(db.open_dir(&dir).is_err());
        // No half-recovered state: catalog, registry, and durability are
        // exactly as they were.
        assert_eq!(db.context().catalog.len(), tables_before);
        assert!(!db.context().catalog.contains("ghost"));
        assert_eq!(db.registry().len(), functions_before);
        assert!(db.durability_status().is_none());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn wal_recovered_tables_carry_lineage_roots() {
        let dir = durable_dir("lineage");
        {
            let mut db = KathDB::open(&dir).unwrap();
            db.sql("CREATE TABLE logged (x INT)").unwrap();
            // Crash before any checkpoint: the table exists only in the WAL.
        }
        let db = KathDB::open(&dir).unwrap();
        let lid = db.context().table_lid("logged").expect("lineage root");
        let edge = db.context().lineage.edges_of(lid)[0];
        assert!(edge.parent_lid.is_none());
        assert!(edge.src_uri.as_deref().unwrap().starts_with("kathdb://"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn flagship_reproduces_fig6_top_two() {
        let (_db, result) = run_flagship();
        let display = result.display_table();
        assert!(display.len() >= 2, "{}", display.render());
        // Fig. 6: Guilty by Suspicion (1991) then Clean and Sober (1988),
        // both with boring posters.
        assert_eq!(
            display.cell(0, "title").unwrap().as_str(),
            Some("Guilty by Suspicion"),
            "\n{}",
            display.render()
        );
        assert_eq!(
            display.cell(1, "title").unwrap().as_str(),
            Some("Clean and Sober"),
            "\n{}",
            display.render()
        );
        assert_eq!(display.cell(0, "year").unwrap().as_int(), Some(1991));
        assert_eq!(display.cell(1, "year").unwrap().as_int(), Some(1988));
        for i in 0..display.len() {
            assert_eq!(display.cell(i, "boring").unwrap(), &Value::Bool(true));
        }
        // Scores are sorted descending.
        let s0 = display.cell(0, "final_score").unwrap().as_f64().unwrap();
        let s1 = display.cell(1, "final_score").unwrap().as_f64().unwrap();
        assert!(s0 > s1);
    }

    #[test]
    fn batched_and_volcano_modes_agree_end_to_end() {
        let (_db, baseline) = run_flagship();
        for mode in [ExecMode::Batched(64), ExecMode::Volcano] {
            let mut db = KathDB::new(42);
            db.load_corpus(&mmqa_small()).unwrap();
            db.set_exec_mode(mode);
            assert_eq!(db.exec_mode(), mode);
            let channel = ScriptedChannel::new([
                "The movie plot contains scenes that are uncommon in real life",
                "Oh I prefer a more recent movie as well when scoring",
                "OK",
            ]);
            let result = db.query(FLAGSHIP, channel.as_ref()).unwrap();
            assert_eq!(
                result.display_table(),
                baseline.display_table(),
                "{mode:?} diverged from the default path"
            );
            // SQL nodes report their batch counts when batched.
            let sql_batches: usize = result.exec.timings.iter().map(|t| t.batches_out).sum();
            match mode {
                ExecMode::Batched(_) => assert!(sql_batches > 0, "no batches recorded"),
                ExecMode::Volcano => assert_eq!(sql_batches, 0),
            }
        }
    }

    #[test]
    fn auto_mode_selects_per_plan_not_per_catalog() {
        // A huge unrelated table must not force batching onto a tiny
        // query: selection weighs the plan's own inputs and estimates.
        let mut db = KathDB::new(42);
        db.load_corpus(&mmqa_small()).unwrap();
        let mut big = Table::new(
            "unrelated_big",
            kath_storage::Schema::of(&[("x", kath_storage::DataType::Int)]),
        );
        for i in 0..50_000i64 {
            big.push(vec![i.into()]).unwrap();
        }
        db.load_table(big, "bench://unrelated").unwrap();
        let channel = ScriptedChannel::new([
            "The movie plot contains scenes that are uncommon in real life",
            "Oh I prefer a more recent movie as well when scoring",
            "OK",
        ]);
        let result = db.query(FLAGSHIP, channel.as_ref()).unwrap();
        // The flagship plan never touches unrelated_big; its own nodes are
        // small, and results match the baseline either way.
        assert_eq!(
            result.display_table().cell(0, "title").unwrap().as_str(),
            Some("Guilty by Suspicion")
        );
        let mode = db.context().exec_mode;
        let plan_rows = 6; // movie_table drives every flagship node
        assert_eq!(
            matches!(mode, ExecMode::Batched(_)),
            matches!(
                kath_optimizer::preferred_exec_mode(plan_rows),
                ExecMode::Batched(_)
            ),
            "mode {mode:?} ignored the plan's own cardinality"
        );
    }

    #[test]
    fn auto_mode_follows_catalog_cardinality() {
        let mut db = KathDB::new(42);
        // Empty catalog: nothing to batch over.
        assert_eq!(db.exec_mode(), ExecMode::Volcano);
        let mut big = Table::new(
            "big",
            kath_storage::Schema::of(&[("x", kath_storage::DataType::Int)]),
        );
        for i in 0..10_000i64 {
            big.push(vec![i.into()]).unwrap();
        }
        db.load_table(big, "bench://big").unwrap();
        assert!(matches!(db.exec_mode(), ExecMode::Batched(_)));
        db.set_batch_size(32);
        assert_eq!(db.exec_mode(), ExecMode::Batched(32));
        db.auto_exec_mode();
        assert!(matches!(db.exec_mode(), ExecMode::Batched(_)));
    }

    #[test]
    fn parallel_and_serial_queries_agree_end_to_end() {
        let (_db, baseline) = run_flagship();
        for threads in [1usize, 4] {
            let mut db = KathDB::new(42);
            db.load_corpus(&mmqa_small()).unwrap();
            db.set_parallelism(threads);
            assert_eq!(db.threads(), threads);
            let channel = ScriptedChannel::new([
                "The movie plot contains scenes that are uncommon in real life",
                "Oh I prefer a more recent movie as well when scoring",
                "OK",
            ]);
            let result = db.query(FLAGSHIP, channel.as_ref()).unwrap();
            assert_eq!(
                result.display_table(),
                baseline.display_table(),
                "threads={threads} diverged from the serial baseline"
            );
            // Every timing row reports its worker count (≥ 1); serial and
            // non-relational nodes report exactly 1.
            for t in &result.exec.timings {
                assert!(t.workers >= 1);
                if t.workers == 1 {
                    assert!(t.worker_ms.is_empty());
                }
            }
        }
    }

    #[test]
    fn auto_parallelism_follows_cardinality_and_pinning_wins() {
        let mut db = KathDB::new(42);
        // Neutralize any KATHDB_THREADS pin from the environment (the CI
        // matrix runs the suite under 1 and 4).
        db.auto_parallelism();
        // Empty catalog: nothing to parallelize.
        assert_eq!(db.threads(), 1);
        db.set_parallelism(6);
        assert_eq!(db.threads(), 6);
        db.auto_parallelism();
        // Auto never exceeds the host's cores, and Volcano pins it to 1.
        assert!(db.threads() <= kath_storage::host_parallelism());
        db.set_exec_mode(ExecMode::Volcano);
        assert_eq!(db.threads(), 1);
    }

    #[test]
    fn sql_similarity_search_end_to_end() {
        let mut db = KathDB::new(42);
        db.sql("CREATE TABLE notes (id INT, body STR, emb BLOB)")
            .unwrap();
        db.sql(
            "INSERT INTO notes VALUES \
             (1, 'gun fight in the alley', EMBED('gun fight in the alley')), \
             (2, 'tea in the quiet garden', EMBED('tea in the quiet garden')), \
             (3, 'murder weapon found', EMBED('murder weapon found')), \
             (4, 'a peaceful walk', EMBED('a peaceful walk'))",
        )
        .unwrap();
        let sql = "SELECT id, body FROM notes \
                   ORDER BY SIMILARITY(emb, 'shootout') DESC LIMIT 2";
        let top = db.sql(sql).unwrap();
        assert_eq!(top.len(), 2);
        let ids: Vec<i64> = top.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert!(ids.contains(&1) && ids.contains(&3), "{}", top.render());
        // The derived index now exists; every mode agrees with the
        // full-sort fallback.
        assert_eq!(db.vector_index_status().len(), 1);
        assert_eq!(db.vector_index_status()[0].2, 4, "all rows scored");
        let baseline = {
            db.set_vector_mode(VectorMode::Off);
            db.sql(sql).unwrap()
        };
        for mode in [VectorMode::Auto, VectorMode::Flat, VectorMode::Ivf] {
            db.set_vector_mode(mode);
            assert_eq!(db.vector_mode(), mode);
            assert_eq!(db.sql(sql).unwrap(), baseline, "{mode:?}");
        }
        db.set_vector_mode(VectorMode::Auto);
        // Inserts invalidate the derived index lazily: a new best match is
        // visible to the very next query.
        db.sql("INSERT INTO notes VALUES (5, 'shootout', EMBED('shootout'))")
            .unwrap();
        let top = db.sql(sql).unwrap();
        assert_eq!(top.cell(0, "id").unwrap(), &Value::Int(5));
        // Index management round-trips.
        assert!(db.drop_vector_index("notes", "emb"));
        assert!(!db.drop_vector_index("notes", "emb"));
        let (scored, unscored) = db.build_vector_index("notes", "emb").unwrap();
        assert_eq!((scored, unscored), (5, 0));
        assert!(db.build_vector_index("notes", "id").is_err());
    }

    #[test]
    fn sketch_history_matches_fig4() {
        let (_db, result) = run_flagship();
        assert_eq!(result.parse.history[0].len(), 8);
        assert_eq!(result.parse.sketch.len(), 11);
        assert_eq!(result.parse.clarifications.len(), 1);
        assert_eq!(result.parse.clarifications[0].0, "exciting");
    }

    #[test]
    fn explanations_work_after_query() {
        let (db, result) = run_flagship();
        let pipeline = db.explain("explain the pipeline").unwrap();
        assert!(pipeline.contains("classify_boring"));
        let lid = result.top_lid().expect("final table carries lids");
        let tuple = db.explain(&format!("explain tuple {lid}")).unwrap();
        assert!(tuple.contains("final_score"), "{tuple}");
        assert!(tuple.contains("0.7 *"), "{tuple}");
    }

    #[test]
    fn explain_before_query_errors() {
        let db = KathDB::new(1);
        assert!(matches!(
            db.explain("explain the pipeline"),
            Err(KathError::NoQueryRun)
        ));
    }

    #[test]
    fn tokens_are_metered_and_functions_persist() {
        let (db, _result) = run_flagship();
        assert!(db.token_usage().calls > 10);
        assert!(db.token_usage().total() > 1000);
        let dir = std::env::temp_dir().join("kathdb_facade_test");
        let path = dir.join("functions.json");
        db.save_functions(&path).unwrap();
        let loaded = kath_fao::FunctionRegistry::load(&path).unwrap();
        assert!(loaded.contains("classify_boring"));
        assert!(loaded.contains("gen_excitement_score"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn lineage_table_has_fig2_shape() {
        let (db, result) = run_flagship();
        let lineage = db.lineage_table().unwrap();
        assert_eq!(
            lineage.schema().names(),
            vec![
                "lid",
                "parent_lid",
                "src_uri",
                "func_id",
                "ver_id",
                "data_type",
                "ts"
            ]
        );
        assert!(lineage.len() > 20);
        // The final tuple's trace reaches the raw ingest.
        let lid = result.top_lid().unwrap();
        let trace = db.context().lineage.trace(lid).unwrap();
        let funcs: Vec<String> = trace.functions().into_iter().map(|(f, _)| f).collect();
        assert!(funcs.contains(&"combine_score".to_string()), "{funcs:?}");
        assert!(
            funcs.contains(&"gen_excitement_score".to_string()),
            "{funcs:?}"
        );
        // The row-level path bottoms out at an external ingest root — the
        // plot documents' media collection (the excitement score derives
        // from the text view rows).
        assert!(funcs.iter().any(|f| f.starts_with("ingest")), "{funcs:?}");
    }

    fn cancelled(err: &KathError) -> bool {
        matches!(
            err,
            KathError::Sql(SqlError::Storage(kath_storage::StorageError::Cancelled(_)))
        )
    }

    #[test]
    fn query_timeout_is_per_statement_and_reversible() {
        let mut db = KathDB::new(42);
        db.sql("CREATE TABLE t (x INT)").unwrap();
        db.sql("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        db.set_query_timeout(Some(std::time::Duration::ZERO));
        assert_eq!(db.query_timeout(), Some(std::time::Duration::ZERO));
        let err = db.sql("SELECT * FROM t").unwrap_err();
        assert!(cancelled(&err), "expected Cancelled, got {err:?}");
        // Mutations carry no deadline; only queries are guarded.
        db.sql("INSERT INTO t VALUES (4)").unwrap();
        db.set_query_timeout(None);
        assert_eq!(db.sql("SELECT * FROM t").unwrap().len(), 4);
    }

    #[test]
    fn cancel_aborts_one_statement_then_rearms() {
        let mut db = KathDB::new(42);
        db.sql("CREATE TABLE t (x INT)").unwrap();
        db.sql("INSERT INTO t VALUES (1), (2)").unwrap();
        db.cancel();
        let err = db.sql("SELECT * FROM t").unwrap_err();
        assert!(cancelled(&err), "expected Cancelled, got {err:?}");
        // The token is one-shot: the very next statement runs normally.
        assert_eq!(db.sql("SELECT * FROM t").unwrap().len(), 2);
        // A handle fired from "another thread" behaves identically.
        let handle = db.cancel_handle();
        handle.cancel();
        assert!(cancelled(&db.sql("SELECT * FROM t").unwrap_err()));
        assert_eq!(db.sql("SELECT * FROM t").unwrap().len(), 2);
    }

    #[test]
    fn query_budgets_bound_result_size() {
        let mut db = KathDB::new(42);
        db.sql("CREATE TABLE t (x INT)").unwrap();
        db.sql("INSERT INTO t VALUES (1), (2), (3), (4)").unwrap();
        db.set_query_budget(Some(2), None);
        let err = db.sql("SELECT * FROM t").unwrap_err();
        assert!(
            matches!(
                err,
                KathError::Sql(SqlError::Storage(kath_storage::StorageError::Budget(_)))
            ),
            "expected Budget, got {err:?}"
        );
        db.set_query_budget(None, None);
        assert_eq!(db.sql("SELECT * FROM t").unwrap().len(), 4);
    }

    #[test]
    fn fault_injection_round_trips_through_the_facade() {
        let mut db = KathDB::new(42);
        let (backend, stats) = db.fault_status();
        assert_eq!(backend, "real");
        assert!(stats.is_none());
        db.install_faults(kath_storage::FaultPlan::parse("seed=7,p=0.5").unwrap());
        let (backend, stats) = db.fault_status();
        assert!(backend.contains("faulty"), "{backend}");
        assert!(stats.is_some());
        db.clear_faults();
        assert_eq!(db.fault_status().0, "real");
        // The catalog still works after the faulty backend is removed.
        db.sql("CREATE TABLE t (x INT)").unwrap();
        db.sql("INSERT INTO t VALUES (1)").unwrap();
        assert_eq!(db.sql("SELECT * FROM t").unwrap().len(), 1);
    }
}
