//! `kathdb-repl` — the interactive shell for KathDB.
//!
//! The paper's thesis is iterative human-AI interaction; this binary is that
//! loop made concrete. It loads the MMQA-like corpus (or a generated one)
//! and accepts:
//!
//! - any natural-language query (the parser will ask clarification
//!   questions right here on stdin),
//! - `\sql <query>` — run raw SQL against the catalog (CREATE / INSERT /
//!   DROP are write-ahead logged when a durable directory is open),
//! - `\open <dir>` — open a durable database directory: crash recovery
//!   (newest valid snapshot + WAL replay), then WAL-logged mutations,
//! - `\checkpoint` — snapshot every table + the function registry,
//! - `\wal` — durability status (snapshot epoch, log records/bytes, what
//!   the last incremental checkpoint wrote vs reused, and the group-commit
//!   coordinator's fsync batching counters),
//! - `\begin` / `\commit` / `\rollback` — explicit transactions: mutations
//!   stage against the begin-time snapshot (visible to this shell's own
//!   SELECTs, invisible to concurrent sessions) and publish atomically as
//!   one framed WAL group at `\commit`,
//! - `\sessions` — how many concurrent [`kathdb::Session`] handles are
//!   live on this database (0 in a plain shell; programs open them via
//!   `KathDB::session()`),
//! - `\pool` — buffer-pool status (budget, residency, hit/miss/eviction
//!   counters, zone-map skips, dirty pages); `\pool <n>` re-budgets it,
//! - `\explain <question>` — NL questions over the last query's provenance,
//! - `\lineage` — the Table-3 lineage relation (tail),
//! - `\functions` — the versioned function registry,
//! - `\tables` — the catalog,
//! - `\tokens` — simulated token usage,
//! - `\batch <n>` / `\batch off` / `\batch auto` — tune the execution
//!   batch size (columnar batch-at-a-time vs row-at-a-time Volcano),
//! - `\threads <n>` / `\threads auto` — tune morsel-driven intra-query
//!   parallelism (results are identical at any setting),
//! - `\compile on|off|auto` — pipeline compilation policy: fuse eligible
//!   scan→filter→project pipelines into compiled closures (auto = compile
//!   when the cost model's break-even rule says the one-time compilation
//!   amortizes; results are identical in every mode),
//! - `\vindex` — vector-search status; `\vindex auto|off|flat|ivf` picks
//!   the access path for `ORDER BY SIMILARITY(col, 'text') DESC LIMIT k`
//!   (auto = cost model chooses exact Flat vs approximate IVF per query);
//!   `\vindex build <table> <column>` / `\vindex drop <table> <column>`
//!   warm up or discard a derived vector index,
//! - `\quit` (checkpoints first when a durable directory is open).
//!
//! ```sh
//! cargo run -p kathdb --bin kathdb-repl
//! echo 'help' | cargo run -p kathdb --bin kathdb-repl   # non-interactive
//! ```

use kath_data::{generate_corpus, mmqa_small, CorpusSpec};
use kath_model::StdioChannel;
use kath_storage::{CompileMode, ExecMode, VectorMode};
use kathdb::KathDB;
use std::io::{BufRead, Write};

/// Renders the vector access-path policy the way `\vindex` reports it.
fn vector_label(mode: VectorMode) -> &'static str {
    match mode {
        VectorMode::Auto => "auto (cost model picks flat vs ivf per query)",
        VectorMode::Off => "off (full-sort fallback plan)",
        VectorMode::Flat => "flat (exact linear scan)",
        VectorMode::Ivf => "ivf (approximate cluster probing)",
    }
}

/// Renders the compilation policy the way `\compile` reports it.
fn compile_label(mode: CompileMode) -> &'static str {
    match mode {
        CompileMode::Auto => "auto (cost model compiles when it amortizes)",
        CompileMode::On => "on (compile every eligible pipeline)",
        CompileMode::Off => "off (interpreted operators only)",
    }
}

/// Renders the active execution mode the way `\batch` reports it.
fn mode_label(mode: ExecMode) -> String {
    match mode {
        ExecMode::Volcano => "row-at-a-time (Volcano)".to_string(),
        ExecMode::Batched(n) => format!("batch size {n}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut db = KathDB::new(42);
    if let Some(pos) = args.iter().position(|a| a == "--movies") {
        let n: usize = args.get(pos + 1).and_then(|v| v.parse().ok()).unwrap_or(50);
        db.load_corpus(&generate_corpus(&CorpusSpec {
            movies: n,
            ..Default::default()
        }))
        .expect("corpus loads");
        println!("loaded a generated corpus of {n} movies");
    } else {
        db.load_corpus(&mmqa_small()).expect("corpus loads");
        println!("loaded the small MMQA-like corpus (6 movies)");
    }
    println!("KathDB repl — type an NL query, \\help for commands\n");

    let stdin = std::io::stdin();
    let channel = StdioChannel;
    loop {
        print!("kathdb> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line.split_once(' ').map(|(c, r)| (c, r.trim())) {
            _ if line == "\\quit" || line == "\\q" => break,
            _ if line == "\\help" || line == "help" => {
                println!(
                    "commands: \\sql <query> | \\begin | \\commit | \\rollback | \
                     \\sessions | \\open <dir> | \\checkpoint | \\wal | \
                     \\pool [<pages>] | \\explain <question> | \\lineage | \
                     \\functions | \\tables | \\tokens | \\batch <n>|off|auto | \
                     \\threads <n>|auto | \\compile on|off|auto | \
                     \\vindex [auto|off|flat|ivf | build <t> <c> | drop <t> <c>] | \
                     \\timeout <ms>|off | \\faults <spec>|off|show | \\quit\n\
                     anything else is parsed as a natural-language query"
                );
            }
            _ if line == "\\lineage" => match db.lineage_table() {
                Ok(t) => {
                    let start = t.len().saturating_sub(15);
                    let mut tail = kath_storage::Table::new("lineage_tail", t.schema().clone());
                    for row in &t.rows()[start..] {
                        tail.push(row.clone()).expect("row copy");
                    }
                    println!("{}", tail.render());
                    println!("({} edges total)", t.len());
                }
                Err(e) => println!("error: {e}"),
            },
            _ if line == "\\functions" => {
                for name in db.registry().names() {
                    let entry = db.registry().get(name).expect("listed");
                    for v in &entry.versions {
                        let active = if v.ver_id == entry.active { "*" } else { " " };
                        println!(
                            "{active} {name} v{} [{}]: {}",
                            v.ver_id,
                            v.note,
                            v.body.summarize()
                        );
                    }
                }
            }
            _ if line == "\\tables" => {
                print!("{}", db.context().catalog.describe());
            }
            _ if line == "\\tokens" => {
                let u = db.token_usage();
                println!(
                    "{} prompt + {} completion tokens over {} calls",
                    u.prompt_tokens, u.completion_tokens, u.calls
                );
            }
            Some(("\\sql", rest)) if !rest.is_empty() => {
                // SELECTs are read-only; mutations are validated, then
                // write-ahead logged (when a durable dir is open), then
                // applied to the live catalog.
                match db.sql(rest) {
                    Ok(t) => println!("{}", t.render()),
                    Err(e) => println!("sql error: {e}"),
                }
            }
            _ if line == "\\begin" => match db.begin() {
                Ok(()) => println!(
                    "transaction open: mutations stage until \\commit \
                     (SELECTs here see them; other sessions do not)"
                ),
                Err(e) => println!("begin failed: {e}"),
            },
            _ if line == "\\commit" => match db.commit() {
                Ok(n) => println!("committed {n} record(s) as one durable WAL group"),
                Err(e) => println!("commit failed: {e}"),
            },
            _ if line == "\\rollback" => match db.rollback() {
                Ok(n) => println!("rolled back: {n} staged record(s) discarded"),
                Err(e) => println!("rollback failed: {e}"),
            },
            _ if line == "\\sessions" => {
                let n = db.sessions();
                let txn = if db.in_transaction() {
                    " — this shell has a transaction open"
                } else {
                    ""
                };
                println!("{n} concurrent session handle(s) live{txn}");
            }
            Some(("\\open", rest)) if !rest.is_empty() => match db.open_dir(rest) {
                Ok(info) => {
                    println!(
                        "opened {rest}: {} table(s) from snapshot {}, {} wal record(s) replayed",
                        info.snapshot_tables, info.snapshot_epoch, info.wal_replayed
                    );
                }
                Err(e) => println!("open failed: {e}"),
            },
            _ if line == "\\checkpoint" => match db.checkpoint() {
                Ok(epoch) => {
                    print!("checkpoint written: snapshot epoch {epoch}");
                    if let Some(c) = db.durability_status().and_then(|s| s.last_checkpoint) {
                        print!(
                            " ({} page(s) written, {} reused, {} of {} bytes)",
                            c.pages_written, c.pages_reused, c.bytes_written, c.bytes_total
                        );
                    }
                    println!();
                }
                Err(e) => println!("checkpoint failed: {e}"),
            },
            _ if line == "\\wal" => match db.durability_status() {
                Some(s) => {
                    println!(
                        "durable dir {} — snapshot epoch {}, {} wal record(s) ({} bytes) since",
                        s.dir.display(),
                        s.snapshot_epoch,
                        s.wal_records,
                        s.wal_bytes
                    );
                    if s.group_fsyncs > 0 {
                        println!(
                            "group commit: {} commit(s) over {} fsync(s) \
                             (mean group size {:.2})",
                            s.group_commits,
                            s.group_fsyncs,
                            s.group_commits as f64 / s.group_fsyncs as f64
                        );
                    }
                    if let Some(c) = s.last_checkpoint {
                        println!(
                            "last checkpoint: epoch {} — {} table(s), {} page(s) written, \
                             {} reused, {} of {} bytes",
                            c.epoch,
                            c.tables,
                            c.pages_written,
                            c.pages_reused,
                            c.bytes_written,
                            c.bytes_total
                        );
                    }
                }
                None => println!("no durable directory open; use \\open <dir>"),
            },
            _ if line == "\\pool" => {
                let p = db.pool_status();
                println!(
                    "buffer pool: {}/{} page(s) resident (~{} bytes), {} dirty page(s)",
                    p.resident_pages,
                    p.budget_pages,
                    p.resident_bytes,
                    db.dirty_pages()
                );
                println!(
                    "counters: {} hit(s), {} miss(es), {} eviction(s), {} zone-map skip(s)",
                    p.hits, p.misses, p.evictions, p.zone_skips
                );
            }
            Some(("\\pool", rest)) if !rest.is_empty() => match rest.parse::<usize>() {
                Ok(pages) => {
                    db.set_pool_budget(pages);
                    let p = db.pool_status();
                    println!(
                        "buffer pool re-budgeted to {} page(s); {} resident",
                        p.budget_pages, p.resident_pages
                    );
                }
                Err(_) => println!("usage: \\pool            show buffer-pool status\n       \\pool <pages>    re-budget the pool (results identical at any size)"),
            },
            Some(("\\explain", rest)) if !rest.is_empty() => match db.explain(rest) {
                Ok(text) => println!("{text}"),
                Err(e) => println!("error: {e}"),
            },
            _ if line == "\\batch" => {
                println!("execution mode: {}", mode_label(db.exec_mode()));
            }
            Some(("\\batch", rest)) if !rest.is_empty() => match rest {
                "off" | "volcano" => {
                    db.set_exec_mode(ExecMode::Volcano);
                    println!("execution mode: {}", mode_label(db.exec_mode()));
                }
                "auto" => {
                    db.auto_exec_mode();
                    println!(
                        "execution mode: auto (currently {})",
                        mode_label(db.exec_mode())
                    );
                }
                n => match n.parse::<usize>() {
                    Ok(n) if n > 0 => {
                        db.set_batch_size(n);
                        println!("execution mode: {}", mode_label(db.exec_mode()));
                    }
                    _ => println!("usage: \\batch <rows> | \\batch off | \\batch auto"),
                },
            },
            _ if line == "\\threads" => {
                println!("parallelism: {} worker(s)", db.threads());
            }
            Some(("\\threads", rest)) if !rest.is_empty() => match rest {
                "auto" => {
                    db.auto_parallelism();
                    println!("parallelism: auto (currently {} worker(s))", db.threads());
                }
                n => match n.parse::<usize>() {
                    Ok(n) if n > 0 => {
                        db.set_parallelism(n);
                        println!("parallelism: {} worker(s)", db.threads());
                    }
                    _ => println!("usage: \\threads <workers> | \\threads auto"),
                },
            },
            _ if line == "\\compile" => {
                println!("compilation: {}", compile_label(db.compile_mode()));
            }
            Some(("\\compile", rest)) if !rest.is_empty() => match rest {
                "on" => {
                    db.set_compile_mode(CompileMode::On);
                    println!("compilation: {}", compile_label(db.compile_mode()));
                }
                "off" => {
                    db.set_compile_mode(CompileMode::Off);
                    println!("compilation: {}", compile_label(db.compile_mode()));
                }
                "auto" => {
                    db.set_compile_mode(CompileMode::Auto);
                    println!("compilation: {}", compile_label(db.compile_mode()));
                }
                _ => println!("usage: \\compile on | \\compile off | \\compile auto"),
            },
            _ if line == "\\vindex" => {
                println!("vector access path: {}", vector_label(db.vector_mode()));
                let status = db.vector_index_status();
                if status.is_empty() {
                    println!("no derived vector indexes (they build on first similarity query)");
                } else {
                    for (table, column, scored, unscored) in status {
                        println!("  {table}.{column}: {scored} indexed, {unscored} unscored");
                    }
                }
            }
            Some(("\\vindex", rest)) if !rest.is_empty() => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                match parts.as_slice() {
                    ["auto"] => db.set_vector_mode(VectorMode::Auto),
                    ["off"] => db.set_vector_mode(VectorMode::Off),
                    ["flat"] => db.set_vector_mode(VectorMode::Flat),
                    ["ivf"] => db.set_vector_mode(VectorMode::Ivf),
                    ["build", table, column] => match db.build_vector_index(table, column) {
                        Ok((scored, unscored)) => println!(
                            "built vector index on {table}.{column}: \
                             {scored} indexed, {unscored} unscored"
                        ),
                        Err(e) => println!("vindex build failed: {e}"),
                    },
                    ["drop", table, column] => {
                        if db.drop_vector_index(table, column) {
                            println!("dropped vector index on {table}.{column}");
                        } else {
                            println!("no vector index on {table}.{column}");
                        }
                    }
                    _ => println!(
                        "usage: \\vindex [auto|off|flat|ivf | build <table> <column> | \
                         drop <table> <column>]"
                    ),
                }
                if matches!(parts.as_slice(), ["auto" | "off" | "flat" | "ivf"]) {
                    println!("vector access path: {}", vector_label(db.vector_mode()));
                }
            }
            _ if line == "\\timeout" => match db.query_timeout() {
                Some(t) => println!("query timeout: {} ms", t.as_millis()),
                None => println!("query timeout: off"),
            },
            Some(("\\timeout", rest)) if !rest.is_empty() => match rest {
                "off" => {
                    db.set_query_timeout(None);
                    println!("query timeout: off");
                }
                n => match n.parse::<u64>() {
                    Ok(ms) => {
                        db.set_query_timeout(Some(std::time::Duration::from_millis(ms)));
                        println!(
                            "query timeout: {ms} ms (queries past it abort with a \
                             'query cancelled' error)"
                        );
                    }
                    Err(_) => println!("usage: \\timeout <ms> | \\timeout off"),
                },
            },
            _ if line == "\\faults" || line == "\\faults show" => {
                let (backend, stats) = db.fault_status();
                println!("io backend: {backend}");
                if let Some(s) = stats {
                    println!(
                        "  {} eligible op(s) seen, {} fault(s) injected",
                        s.ops, s.injected
                    );
                }
            }
            Some(("\\faults", rest)) if !rest.is_empty() => match rest {
                "off" => {
                    db.clear_faults();
                    println!("fault injection off (real io backend)");
                }
                "show" => {
                    let (backend, stats) = db.fault_status();
                    println!("io backend: {backend}");
                    if let Some(s) = stats {
                        println!(
                            "  {} eligible op(s) seen, {} fault(s) injected",
                            s.ops, s.injected
                        );
                    }
                }
                spec => match kath_storage::FaultPlan::parse(spec) {
                    Ok(plan) => {
                        db.install_faults(plan);
                        println!(
                            "fault injection on: {} (test-only; \\faults off to disable)",
                            db.fault_status().0
                        );
                    }
                    Err(e) => println!(
                        "bad fault spec: {e}\n\
                         usage: \\faults seed=<n>,p=<f>[,kinds=a|b][,ops=x|y][,at=<n>:<kind>]\
                         [,max=<n>] | \\faults off | \\faults show"
                    ),
                },
            },
            _ if line.starts_with('\\') => {
                println!("unknown command {line}; \\help lists commands");
            }
            _ => match db.query(line, &channel) {
                Ok(result) => {
                    println!("{}", result.display_table().render());
                    println!(
                        "plan timings ({}, {} worker(s), compile {}):",
                        mode_label(db.context().exec_mode),
                        db.context().threads,
                        db.compile_mode()
                    );
                    for t in &result.exec.timings {
                        let parallel = if t.workers > 1 {
                            format!("  [{}w, merge {:.2} ms]", t.workers, t.merge_ms)
                        } else {
                            String::new()
                        };
                        let compiled = if t.compiled {
                            format!("  [compiled in {:.2} ms]", t.compile_ms)
                        } else {
                            String::new()
                        };
                        println!(
                            "  {:<28} {:>9.2} ms  {:>6} rows  {:>4} batches{}{}",
                            t.func_id, t.elapsed_ms, t.rows_out, t.batches_out, parallel, compiled
                        );
                    }
                    if !result.exec.repairs.is_empty() {
                        println!(
                            "({} repair(s) performed during execution — \\functions shows versions)",
                            result.exec.repairs.len()
                        );
                    }
                    println!(
                        "ask \\explain explain the pipeline — or \\explain explain tuple <lid>"
                    );
                }
                Err(e) => println!("query failed: {e}"),
            },
        }
    }
    if db.durability_status().is_some() {
        match db.close() {
            Ok(()) => println!("(checkpointed durable state)"),
            Err(e) => println!("(close failed: {e})"),
        }
    }
    println!("bye");
}
