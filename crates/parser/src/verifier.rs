//! The agentic plan verifier.
//!
//! "A verifier then reads the draft plan with the initial sample data … if
//! this snapshot is enough to judge correctness, it approves, otherwise it
//! identifies specific relations for which it needs additional information,
//! invokes the tool user, which owns a small set of database utilities
//! (e.g., rows sampler, joinability tester …). Once the verifier is
//! satisfied … it forwards the logical plan to the query optimizer,
//! otherwise it sends hints and the draft plan back to the writer" (§4).

use crate::logical::LogicalPlan;
use kath_storage::Catalog;
use std::collections::HashSet;

/// One verification check with its outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// What was checked.
    pub name: String,
    /// Whether it passed.
    pub passed: bool,
    /// Human-readable detail (becomes the hint on failure).
    pub detail: String,
}

/// The verifier's report.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifierReport {
    /// Whether the plan was approved.
    pub approved: bool,
    /// Every check performed (over all rounds).
    pub checks: Vec<Check>,
    /// How many database-utility invocations the tool user made.
    pub tool_invocations: usize,
    /// Writer⇄verifier rounds used.
    pub rounds: u32,
}

impl VerifierReport {
    /// The hints produced by failed checks.
    pub fn hints(&self) -> Vec<&str> {
        self.checks
            .iter()
            .filter(|c| !c.passed)
            .map(|c| c.detail.as_str())
            .collect()
    }
}

/// The plan verifier with its tool user.
pub struct PlanVerifier<'a> {
    catalog: &'a Catalog,
    /// Rows the tool user samples per relation.
    pub sample_size: usize,
    /// Maximum writer⇄verifier rounds before giving up.
    pub max_rounds: u32,
}

impl<'a> PlanVerifier<'a> {
    /// Builds a verifier over the system catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self {
            catalog,
            sample_size: 3,
            max_rounds: 3,
        }
    }

    /// Runs the writer⇄verifier loop: verifies, lets the (simulated) writer
    /// repair resolvable problems (misspelled input names), and re-verifies.
    /// Returns the (possibly revised) plan and the full report.
    pub fn verify(&self, mut plan: LogicalPlan) -> (LogicalPlan, VerifierReport) {
        let mut all_checks = Vec::new();
        let mut tool_invocations = 0usize;
        let mut rounds = 0u32;
        loop {
            rounds += 1;
            let (checks, tools) = self.run_checks(&plan);
            tool_invocations += tools;
            let failed: Vec<Check> = checks.iter().filter(|c| !c.passed).cloned().collect();
            all_checks.extend(checks);
            if failed.is_empty() {
                return (
                    plan,
                    VerifierReport {
                        approved: true,
                        checks: all_checks,
                        tool_invocations,
                        rounds,
                    },
                );
            }
            if rounds >= self.max_rounds {
                return (
                    plan,
                    VerifierReport {
                        approved: false,
                        checks: all_checks,
                        tool_invocations,
                        rounds,
                    },
                );
            }
            // Writer round: repair what the hints make repairable.
            let mut repaired_any = false;
            for check in &failed {
                if let Some(bad) = check.detail.strip_prefix("unknown input '") {
                    let bad_name = bad.split('\'').next().unwrap_or("").to_string();
                    if let Some(fix) = self.closest_name(&bad_name, &plan) {
                        for node in plan.nodes.iter_mut() {
                            for input in node.signature.inputs.iter_mut() {
                                if *input == bad_name {
                                    *input = fix.clone();
                                    repaired_any = true;
                                }
                            }
                        }
                    }
                }
            }
            if !repaired_any {
                return (
                    plan,
                    VerifierReport {
                        approved: false,
                        checks: all_checks,
                        tool_invocations,
                        rounds,
                    },
                );
            }
        }
    }

    fn run_checks(&self, plan: &LogicalPlan) -> (Vec<Check>, usize) {
        let mut checks = Vec::new();
        let mut tools = 0usize;

        // Known datasources: catalog tables + node outputs (in order).
        let mut known: HashSet<String> = self
            .catalog
            .table_names()
            .into_iter()
            .map(str::to_string)
            .collect();

        // 1. Output uniqueness.
        let mut outputs = HashSet::new();
        for node in &plan.nodes {
            let dup = !outputs.insert(node.signature.output.clone());
            checks.push(Check {
                name: format!("unique_output:{}", node.signature.name),
                passed: !dup && !node.signature.output.is_empty(),
                detail: if dup {
                    format!("duplicate output '{}'", node.signature.output)
                } else {
                    format!("output '{}' is unique", node.signature.output)
                },
            });
        }

        // 2. Input resolution in topological order. The pre-written
        // view-population node makes the multimodal views available.
        for node in &plan.nodes {
            if node.prewritten {
                known.insert(node.signature.output.clone());
                for v in [
                    "scene_objects",
                    "scene_relationships",
                    "scene_attributes",
                    "scene_frames",
                    "text_entities",
                    "text_mentions",
                    "text_relationships",
                    "text_attributes",
                    "text_texts",
                ] {
                    known.insert(v.to_string());
                }
                continue;
            }
            for input in &node.signature.inputs {
                let ok = known.contains(input);
                checks.push(Check {
                    name: format!("input_resolves:{}:{input}", node.signature.name),
                    passed: ok,
                    detail: if ok {
                        format!("input '{input}' resolves")
                    } else {
                        format!("unknown input '{input}' of node '{}'", node.signature.name)
                    },
                });
                // Tool user: sample base relations to confirm they are
                // non-degenerate (the "rows sampler" utility).
                if ok && self.catalog.contains(input) {
                    tools += 1;
                    let sample = self
                        .catalog
                        .sample_rows(input, self.sample_size)
                        .map(|t| t.len())
                        .unwrap_or(0);
                    checks.push(Check {
                        name: format!("sampled:{input}"),
                        passed: true,
                        detail: format!("sampled {sample} rows from '{input}'"),
                    });
                }
            }
            known.insert(node.signature.output.clone());
        }

        // 3. Joinability of the flagship joins, via the tool-user utility,
        // when both sides are base relations in the catalog.
        for (left, lcol, right, rcol) in [
            ("movie_table", "did", "text_texts", "did"),
            ("movie_table", "vid", "scene_frames", "vid"),
        ] {
            if self.catalog.contains(left) && self.catalog.contains(right) {
                tools += 1;
                match self.catalog.joinability(left, lcol, right, rcol) {
                    Ok(j) => {
                        let ok = j.key_overlap > 0.0;
                        checks.push(Check {
                            name: format!("joinable:{left}.{lcol}~{right}.{rcol}"),
                            passed: ok,
                            detail: format!(
                                "key overlap {:.2}, right side unique: {}",
                                j.key_overlap, j.right_unique
                            ),
                        });
                    }
                    Err(e) => checks.push(Check {
                        name: format!("joinable:{left}.{lcol}~{right}.{rcol}"),
                        passed: false,
                        detail: format!("joinability test failed: {e}"),
                    }),
                }
            }
        }

        (checks, tools)
    }

    /// The writer's repair heuristic: the known datasource with the closest
    /// name (shared prefix / substring), if any is convincingly close.
    fn closest_name(&self, bad: &str, plan: &LogicalPlan) -> Option<String> {
        let mut candidates: Vec<String> = self
            .catalog
            .table_names()
            .into_iter()
            .map(str::to_string)
            .collect();
        candidates.extend(plan.nodes.iter().map(|n| n.signature.output.clone()));
        candidates
            .into_iter()
            .filter(|c| c.contains(bad) || bad.contains(c.as_str()) || shared_prefix(c, bad) >= 5)
            .max_by_key(|c| shared_prefix(c, bad))
    }
}

fn shared_prefix(a: &str, b: &str) -> usize {
    a.bytes().zip(b.bytes()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intent::extract_intent;
    use crate::logical::generate_logical_plan;
    use crate::sketch::generate_sketch;
    use kath_model::{SimLlm, TokenMeter};
    use kath_storage::{DataType, Schema, Table};

    const FLAGSHIP: &str = "Sort the given films in the table by how exciting \
                            they are, but the poster should be 'boring'";

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let movies = Table::from_rows(
            "movie_table",
            Schema::of(&[
                ("id", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("did", DataType::Int),
                ("vid", DataType::Int),
            ]),
            vec![
                vec![
                    1i64.into(),
                    "Guilty by Suspicion".into(),
                    1991i64.into(),
                    1i64.into(),
                    1i64.into(),
                ],
                vec![
                    2i64.into(),
                    "Clean and Sober".into(),
                    1988i64.into(),
                    2i64.into(),
                    2i64.into(),
                ],
            ],
        )
        .unwrap();
        c.register(movies).unwrap();
        let texts = Table::from_rows(
            "text_texts",
            Schema::of(&[
                ("did", DataType::Int),
                ("lid", DataType::Int),
                ("chars", DataType::Str),
            ]),
            vec![
                vec![1i64.into(), 10i64.into(), "A gun fight.".into()],
                vec![2i64.into(), 11i64.into(), "A quiet day.".into()],
            ],
        )
        .unwrap();
        c.register(texts).unwrap();
        let frames = Table::from_rows(
            "scene_frames",
            Schema::of(&[
                ("vid", DataType::Int),
                ("fid", DataType::Int),
                ("lid", DataType::Int),
                ("pixels", DataType::Str),
            ]),
            vec![
                vec![
                    1i64.into(),
                    0i64.into(),
                    20i64.into(),
                    "file://p1.png".into(),
                ],
                vec![
                    2i64.into(),
                    0i64.into(),
                    21i64.into(),
                    "file://p2.png".into(),
                ],
            ],
        )
        .unwrap();
        c.register(frames).unwrap();
        c
    }

    fn good_plan() -> LogicalPlan {
        let llm = SimLlm::new(42, TokenMeter::new());
        let mut intent = extract_intent(FLAGSHIP, &llm);
        intent.concepts[0].clarification = Some("uncommon scenes".to_string());
        intent
            .extra_factors
            .push(crate::intent::ExtraFactor::Recency);
        let sketch = generate_sketch(&intent, &llm, 2);
        generate_logical_plan(&sketch, "movie_table")
    }

    #[test]
    fn good_plan_is_approved_with_tool_use() {
        let cat = catalog();
        let verifier = PlanVerifier::new(&cat);
        let (plan, report) = verifier.verify(good_plan());
        assert!(report.approved, "hints: {:?}", report.hints());
        assert_eq!(report.rounds, 1);
        assert!(report.tool_invocations > 0);
        assert_eq!(plan.nodes.len(), 11);
        // Joinability checks ran against the base relations.
        assert!(report
            .checks
            .iter()
            .any(|c| c.name.starts_with("joinable:") && c.passed));
    }

    #[test]
    fn misspelled_input_is_repaired_by_the_writer_round() {
        let cat = catalog();
        let mut plan = good_plan();
        // Corrupt one input: "movie_tabel" (a typo an LLM writer could make).
        let idx = plan
            .nodes
            .iter()
            .position(|n| n.signature.name == "select_movie_columns")
            .unwrap();
        plan.nodes[idx].signature.inputs[0] = "movie_tabel".to_string();
        let verifier = PlanVerifier::new(&cat);
        let (repaired, report) = verifier.verify(plan);
        assert!(report.approved, "hints: {:?}", report.hints());
        assert!(report.rounds >= 2);
        assert_eq!(
            repaired
                .node("select_movie_columns")
                .unwrap()
                .signature
                .inputs[0],
            "movie_table"
        );
    }

    #[test]
    fn unresolvable_input_is_rejected_with_hints() {
        let cat = catalog();
        let mut plan = good_plan();
        let idx = plan
            .nodes
            .iter()
            .position(|n| n.signature.name == "select_movie_columns")
            .unwrap();
        plan.nodes[idx].signature.inputs[0] = "zzz_no_such_relation".to_string();
        let verifier = PlanVerifier::new(&cat);
        let (_plan, report) = verifier.verify(plan);
        assert!(!report.approved);
        assert!(!report.hints().is_empty());
        assert!(report.hints()[0].contains("unknown input"));
    }

    #[test]
    fn duplicate_outputs_are_rejected() {
        let cat = catalog();
        let mut plan = good_plan();
        let n = plan.nodes.len();
        plan.nodes[n - 1].signature.output = plan.nodes[n - 2].signature.output.clone();
        let verifier = PlanVerifier::new(&cat);
        let (_p, report) = verifier.verify(plan);
        assert!(!report.approved);
        assert!(report
            .hints()
            .iter()
            .any(|h| h.contains("duplicate output")));
    }

    #[test]
    fn empty_catalog_fails_base_relation_resolution() {
        let cat = Catalog::new();
        let verifier = PlanVerifier::new(&cat);
        let (_p, report) = verifier.verify(good_plan());
        assert!(!report.approved);
    }
}
