//! Query-intent extraction from natural language.
//!
//! The NL parser's first job is understanding what the user wants before
//! committing to a sketch. Intent extraction is deterministic (it stands in
//! for the LLM's reading of the query) and deliberately conservative: what
//! it cannot ground becomes a clarification question (§5).

use kath_model::SimLlm;

/// What the user wants done with a concept: rank by it or filter on it.
#[derive(Debug, Clone, PartialEq)]
pub enum ConceptUse {
    /// Order results by the concept score (e.g. "sort by how exciting").
    RankBy,
    /// Keep only rows matching the concept (e.g. "poster should be boring").
    FilterBy {
        /// Keep rows *matching* the concept if true.
        keep_matching: bool,
    },
}

/// Which modality a concept applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Modality {
    /// Plot/description text.
    Text,
    /// Poster/frame images.
    Image,
}

/// One concept extracted from the query ("exciting" over text, "boring"
/// over the poster image).
#[derive(Debug, Clone, PartialEq)]
pub struct ConceptIntent {
    /// The subjective term as the user wrote it.
    pub term: String,
    /// How it is used.
    pub usage: ConceptUse,
    /// The modality it grounds in.
    pub modality: Modality,
    /// The user's clarification of the term, once obtained.
    pub clarification: Option<String>,
}

/// Additional ranking factors introduced by reactive corrections (§5),
/// e.g. "I prefer more recent movies when scoring".
#[derive(Debug, Clone, PartialEq)]
pub enum ExtraFactor {
    /// Favor recent release years.
    Recency,
    /// Favor older release years.
    Age,
}

/// The extracted intent of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryIntent {
    /// Original NL query.
    pub query: String,
    /// Extracted concepts, in textual order.
    pub concepts: Vec<ConceptIntent>,
    /// Extra factors from corrections, in arrival order.
    pub extra_factors: Vec<ExtraFactor>,
}

/// Words that signal image/poster modality.
const IMAGE_CUES: [&str; 5] = ["poster", "image", "picture", "photo", "frame"];

/// Extracts intent from an NL query. Subjective terms become concepts; a
/// term within an image-cue clause grounds in the image, otherwise in text.
/// "should be" / "must be" phrasing marks a filter; ranking verbs ("sort",
/// "rank", "order") mark the ranking concept.
pub fn extract_intent(query: &str, llm: &SimLlm) -> QueryIntent {
    let lower = query.to_lowercase();
    let terms = llm.knowledge().subjective_terms_in(query);
    let mut concepts = Vec::new();
    for term in terms {
        let pos = lower.find(&term).unwrap_or(0);
        // Image modality if an image cue appears within the same clause
        // (between the previous comma/`but` and the term).
        let clause_start = lower[..pos]
            .rfind([',', ';'])
            .map(|i| i + 1)
            .or_else(|| lower[..pos].rfind(" but ").map(|i| i + 5))
            .unwrap_or(0);
        let clause = &lower[clause_start..(pos + term.len()).min(lower.len())];
        let modality = if IMAGE_CUES.iter().any(|c| clause.contains(c)) {
            Modality::Image
        } else {
            Modality::Text
        };
        // Filter if the clause uses copular phrasing; otherwise ranking if a
        // ranking verb governs the query, else default to filter.
        let filter_phrasing = [
            "should be",
            "must be",
            "has to be",
            "should not be",
            "must not be",
            "shouldn't be",
        ]
        .iter()
        .any(|p| clause.contains(p));
        let ranking_verbs = ["sort", "rank", "order by", "top"];
        let usage = if filter_phrasing {
            let negated = clause.contains("not be") || clause.contains("shouldn't");
            ConceptUse::FilterBy {
                keep_matching: !negated,
            }
        } else if ranking_verbs.iter().any(|v| lower.contains(v)) {
            ConceptUse::RankBy
        } else {
            ConceptUse::FilterBy {
                keep_matching: true,
            }
        };
        concepts.push(ConceptIntent {
            term,
            usage,
            modality,
            clarification: None,
        });
    }
    QueryIntent {
        query: query.to_string(),
        concepts,
        extra_factors: Vec::new(),
    }
}

/// Parses a reactive-correction reply into extra factors; returns what was
/// understood (empty when the reply is just "OK" or unintelligible).
pub fn parse_correction(reply: &str) -> Vec<ExtraFactor> {
    let lower = reply.to_lowercase();
    let mut out = Vec::new();
    if (lower.contains("recent") || lower.contains("newer") || lower.contains("new movies"))
        && !lower.contains("not recent")
    {
        out.push(ExtraFactor::Recency);
    }
    if lower.contains("older") || lower.contains("classic") {
        out.push(ExtraFactor::Age);
    }
    out
}

/// Whether the reply is the explicit go-ahead that ends the refinement
/// cycle ("until the user explicitly responds OK", §5).
pub fn is_approval(reply: &str) -> bool {
    let t = reply.trim().to_lowercase();
    t == "ok" || t == "okay" || t == "looks good" || t == "lgtm" || t == "yes"
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_model::TokenMeter;

    fn llm() -> SimLlm {
        SimLlm::new(42, TokenMeter::new())
    }

    const FLAGSHIP: &str = "Sort the given films in the table by how exciting \
                            they are, but the poster should be 'boring'";

    #[test]
    fn flagship_query_intent() {
        let intent = extract_intent(FLAGSHIP, &llm());
        assert_eq!(intent.concepts.len(), 2);
        let exciting = &intent.concepts[0];
        assert_eq!(exciting.term, "exciting");
        assert_eq!(exciting.usage, ConceptUse::RankBy);
        assert_eq!(exciting.modality, Modality::Text);
        let boring = &intent.concepts[1];
        assert_eq!(boring.term, "boring");
        assert_eq!(
            boring.usage,
            ConceptUse::FilterBy {
                keep_matching: true
            }
        );
        assert_eq!(boring.modality, Modality::Image);
    }

    #[test]
    fn negated_filter() {
        let intent = extract_intent(
            "rank films by how scary they are, the poster should not be boring",
            &llm(),
        );
        let boring = intent.concepts.iter().find(|c| c.term == "boring").unwrap();
        assert_eq!(
            boring.usage,
            ConceptUse::FilterBy {
                keep_matching: false
            }
        );
    }

    #[test]
    fn unambiguous_query_has_no_concepts() {
        let intent = extract_intent("sort films by release year", &llm());
        assert!(intent.concepts.is_empty());
    }

    #[test]
    fn correction_parsing() {
        assert_eq!(
            parse_correction("Oh I prefer a more recent movie as well when scoring"),
            vec![ExtraFactor::Recency]
        );
        assert_eq!(
            parse_correction("I like older classics"),
            vec![ExtraFactor::Age]
        );
        assert!(parse_correction("OK").is_empty());
    }

    #[test]
    fn approval_detection() {
        assert!(is_approval("OK"));
        assert!(is_approval("  okay "));
        assert!(is_approval("LGTM"));
        assert!(!is_approval("add recency"));
    }
}
