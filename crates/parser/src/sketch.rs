//! Query sketches and the interactive NL parser.
//!
//! The sketch is "a step-by-step description of the intended execution
//! logic expressed entirely in NL … one abstraction level above the final
//! logical plan" (§2.1). The parser runs the two interaction modes of §5:
//! **proactive clarification** (the reviewer agent asks about subjective
//! terms before sketching) and **reactive correction** (the user reviews the
//! sketch and the sketch generator refines it until they reply OK).

use crate::intent::{
    extract_intent, is_approval, parse_correction, ConceptIntent, ConceptUse, ExtraFactor,
    Modality, QueryIntent,
};
use kath_model::{SimLlm, UserChannel};

/// Machine-followable tag attached to each sketch step; the logical plan
/// generator expands tags into function signatures.
#[derive(Debug, Clone, PartialEq)]
pub enum StepTag {
    /// Populate the multimodal relational views (pre-written in the
    /// prototype, §6).
    PopulateViews,
    /// Select the relevant columns from the base table.
    SelectColumns,
    /// Join the text semantic-graph view with the base table.
    JoinTextView,
    /// Join the image scene-graph view with the base table.
    JoinImageView,
    /// Score a text concept (e.g. excitement) via keyword similarity.
    ConceptScore {
        /// The subjective term being scored.
        term: String,
    },
    /// Score recency from the release year.
    RecencyScore,
    /// Combine the ranking scores into a final score.
    CombineScores,
    /// Classify a visual attribute of the poster (e.g. boring).
    VisualClassify {
        /// The subjective term being classified.
        term: String,
    },
    /// Filter rows on a previously computed flag.
    FilterFlag {
        /// The flag's term.
        term: String,
        /// Keep rows where the flag is true.
        keep: bool,
    },
    /// Join the score intermediates together.
    JoinScores,
    /// Join everything and produce the final ranked list.
    FinalRank,
}

/// One sketch step: an id, the NL description the user reviews, and the tag.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchStep {
    /// 1-based step number.
    pub id: usize,
    /// Natural-language description (what the user sees and edits).
    pub text: String,
    /// Machine-followable intent.
    pub tag: StepTag,
}

/// A chain-of-thought query sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySketch {
    /// Sketch version (1 = initial, incremented per correction round).
    pub version: u32,
    /// The steps in execution order.
    pub steps: Vec<SketchStep>,
}

impl QuerySketch {
    /// Renders the sketch the way it is shown to the user (Fig. 4).
    pub fn render(&self) -> String {
        let mut out = format!("Query sketch (v{}):\n", self.version);
        for s in &self.steps {
            out.push_str(&format!("  {}. {}\n", s.id, s.text));
        }
        out
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the sketch is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Generates a sketch from an intent (the *sketch generator* agent).
#[allow(clippy::vec_init_then_push)] // steps accumulate conditionally below
pub fn generate_sketch(intent: &QueryIntent, llm: &SimLlm, version: u32) -> QuerySketch {
    let mut steps: Vec<(String, StepTag)> = Vec::new();

    steps.push((
        "Populate the relational views over the raw text and images \
         (extract scene graphs from posters and semantic graphs from plots)."
            .to_string(),
        StepTag::PopulateViews,
    ));
    steps.push((
        "Select the relevant columns from movie_table (e.g., title, release year, \
         plot document id, poster image id)."
            .to_string(),
        StepTag::SelectColumns,
    ));
    steps.push((
        "Join the relational view over text with movie_table to associate each \
         movie with the entities extracted from its plot."
            .to_string(),
        StepTag::JoinTextView,
    ));
    steps.push((
        "Check the Objects table associated with each poster image by joining the \
         relational view over images with movie_table."
            .to_string(),
        StepTag::JoinImageView,
    ));

    // Ranking concepts over text.
    for c in &intent.concepts {
        if c.modality == Modality::Text && c.usage == ConceptUse::RankBy {
            let kws = llm.generate_keywords(c.clarification.as_deref().unwrap_or(&c.term));
            let preview: Vec<&str> = kws.iter().take(3).map(String::as_str).collect();
            steps.push((
                format!(
                    "Assign an \"{} score\" to each film based on how many and how \
                     intense the matching scenes are, by measuring vector similarity \
                     between generated keywords (e.g., {}, ...) and all extracted \
                     text entities.",
                    c.term,
                    preview.join(", ")
                ),
                StepTag::ConceptScore {
                    term: c.term.clone(),
                },
            ));
        }
    }

    // Extra factors from corrections.
    let has_recency = intent.extra_factors.contains(&ExtraFactor::Recency)
        || intent.extra_factors.contains(&ExtraFactor::Age);
    if has_recency {
        steps.push((
            "Assign a \"recency score\" for each film based on the release date \
             (newer films score higher)."
                .to_string(),
            StepTag::RecencyScore,
        ));
        steps.push((
            "Combine the excitement and recency scores into a final score \
             according to the user's preference (weighted sum)."
                .to_string(),
            StepTag::CombineScores,
        ));
    }

    // Visual classification + filter.
    for c in &intent.concepts {
        if c.modality == Modality::Image {
            if let ConceptUse::FilterBy { keep_matching } = c.usage {
                steps.push((
                    format!(
                        "Analyze poster visual features using both extracted objects and \
                         image pixels to determine if the poster appears '{}' (e.g., lacks \
                         vivid colors, few objects, little action, plain background).",
                        c.term
                    ),
                    StepTag::VisualClassify {
                        term: c.term.clone(),
                    },
                ));
                steps.push((
                    format!(
                        "{} posters labeled as {}.",
                        if keep_matching {
                            "Keep only films whose"
                        } else {
                            "Filter out films whose"
                        },
                        c.term
                    ),
                    StepTag::FilterFlag {
                        term: c.term.clone(),
                        keep: keep_matching,
                    },
                ));
            }
        }
    }

    // Final assembly: with combined scores the paper splits the assembly
    // into two join steps (§6 functions 9 and 10); otherwise one step.
    if has_recency {
        steps.push((
            "Join the intermediate score tables so every film carries its final \
             combined score."
                .to_string(),
            StepTag::JoinScores,
        ));
    }
    steps.push((
        "Join all intermediate results and produce the final ranked list of \
         movies by their score."
            .to_string(),
        StepTag::FinalRank,
    ));

    QuerySketch {
        version,
        steps: steps
            .into_iter()
            .enumerate()
            .map(|(i, (text, tag))| SketchStep {
                id: i + 1,
                text,
                tag,
            })
            .collect(),
    }
}

/// The outcome of interactive parsing.
#[derive(Debug, Clone)]
pub struct ParseOutcome {
    /// The final intent (with clarifications and corrections applied).
    pub intent: QueryIntent,
    /// The approved sketch.
    pub sketch: QuerySketch,
    /// Every sketch version produced (v1 first).
    pub history: Vec<QuerySketch>,
    /// `(term, user clarification)` pairs from the proactive phase.
    pub clarifications: Vec<(String, String)>,
}

/// The interactive NL parser: reviewer + sketch generator (§2.1, §5).
pub struct NlParser {
    llm: SimLlm,
    /// Upper bound on reactive correction rounds.
    pub max_rounds: u32,
}

impl NlParser {
    /// Builds a parser over a simulated model.
    pub fn new(llm: SimLlm) -> Self {
        Self { llm, max_rounds: 5 }
    }

    /// The model in use.
    pub fn llm(&self) -> &SimLlm {
        &self.llm
    }

    /// Whether a concept needs user clarification: subjective terms over
    /// text are user-dependent ("exciting"); image-modality terms ground in
    /// visual features the knowledge base already has ("boring").
    fn needs_clarification(&self, c: &ConceptIntent) -> bool {
        c.modality == Modality::Text
    }

    /// Runs the full interactive parse: proactive clarification, sketch
    /// generation, and the reactive correction cycle ("repeats until the
    /// user explicitly responds OK", §5).
    pub fn parse(&self, query: &str, channel: &dyn UserChannel) -> ParseOutcome {
        let mut intent = extract_intent(query, &self.llm);

        // Proactive clarification (Fig. 4, top).
        let mut clarifications = Vec::new();
        let mut resolved: Vec<String> = intent
            .concepts
            .iter()
            .filter(|c| !self.needs_clarification(c))
            .map(|c| c.term.clone())
            .collect();
        while let Some(clar) = self.llm.detect_ambiguity(query, &resolved) {
            resolved.push(clar.term.clone());
            let needs = intent
                .concepts
                .iter()
                .any(|c| c.term == clar.term && self.needs_clarification(c));
            if !needs {
                continue;
            }
            let reply = channel.ask(&clar.question);
            for c in intent.concepts.iter_mut() {
                if c.term == clar.term {
                    c.clarification = Some(reply.clone());
                }
            }
            clarifications.push((clar.term, reply));
        }

        // Sketch generation + reactive correction (Fig. 4, bottom).
        let mut version = 1;
        let mut sketch = generate_sketch(&intent, &self.llm, version);
        let mut history = vec![sketch.clone()];
        for _ in 0..self.max_rounds {
            let reply = channel.ask(&format!(
                "{}\nReply OK to proceed, or describe a correction.",
                sketch.render()
            ));
            if is_approval(&reply) {
                break;
            }
            let factors = parse_correction(&reply);
            if factors.is_empty() {
                channel.notify(
                    "I could not map that correction to a known refinement; \
                     proceeding with the current sketch.",
                );
                break;
            }
            for f in factors {
                if !intent.extra_factors.contains(&f) {
                    intent.extra_factors.push(f);
                }
            }
            version += 1;
            sketch = generate_sketch(&intent, &self.llm, version);
            history.push(sketch.clone());
        }

        ParseOutcome {
            intent,
            sketch,
            history,
            clarifications,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_model::{ScriptedChannel, TokenMeter};

    const FLAGSHIP: &str = "Sort the given films in the table by how exciting \
                            they are, but the poster should be 'boring'";

    fn parser() -> NlParser {
        NlParser::new(SimLlm::new(42, TokenMeter::new()))
    }

    #[test]
    fn fig4_full_interaction_grows_sketch_8_to_11() {
        // The exact simulated user of §6: one clarification reply, one
        // reactive correction, then OK.
        let channel = ScriptedChannel::new([
            "The movie plot contains scenes that are uncommon in real life",
            "Oh I prefer a more recent movie as well when scoring",
            "OK",
        ]);
        let outcome = parser().parse(FLAGSHIP, channel.as_ref());

        // Proactive phase asked exactly the paper's question.
        assert_eq!(outcome.clarifications.len(), 1);
        assert_eq!(outcome.clarifications[0].0, "exciting");
        let transcript = channel.transcript();
        assert!(transcript[0]
            .0
            .contains("What does 'exciting' mean in this context?"));

        // Initial sketch has 8 steps; corrected sketch has 11 (§6).
        assert_eq!(outcome.history[0].len(), 8);
        assert_eq!(outcome.sketch.len(), 11);
        assert_eq!(outcome.sketch.version, 2);

        // The corrected sketch contains recency and combine steps.
        assert!(outcome
            .sketch
            .steps
            .iter()
            .any(|s| s.tag == StepTag::RecencyScore));
        assert!(outcome
            .sketch
            .steps
            .iter()
            .any(|s| s.tag == StepTag::CombineScores));
    }

    #[test]
    fn approval_without_corrections_keeps_v1() {
        let channel = ScriptedChannel::new(["scenes that are uncommon in real life", "OK"]);
        let outcome = parser().parse(FLAGSHIP, channel.as_ref());
        assert_eq!(outcome.sketch.version, 1);
        assert_eq!(outcome.history.len(), 1);
        assert_eq!(outcome.sketch.len(), 8);
    }

    #[test]
    fn image_concept_needs_no_clarification() {
        // Only "exciting" (text) is asked; "boring" (image) grounds in
        // visual features — matching the single question in Fig. 4.
        let channel = ScriptedChannel::new(["uncommon scenes", "OK"]);
        let outcome = parser().parse(FLAGSHIP, channel.as_ref());
        assert_eq!(outcome.clarifications.len(), 1);
    }

    #[test]
    fn keywords_flow_into_sketch_text() {
        let channel = ScriptedChannel::new([
            "The movie plot contains scenes that are uncommon in real life",
            "OK",
        ]);
        let outcome = parser().parse(FLAGSHIP, channel.as_ref());
        let score_step = outcome
            .sketch
            .steps
            .iter()
            .find(|s| matches!(s.tag, StepTag::ConceptScore { .. }))
            .unwrap();
        // The LLM-generated keyword list surfaces in the NL description.
        assert!(score_step.text.contains("gun"), "{}", score_step.text);
    }

    #[test]
    fn unintelligible_correction_is_notified_and_parse_terminates() {
        let channel = ScriptedChannel::new(["uncommon scenes", "make it more purple somehow"]);
        let outcome = parser().parse(FLAGSHIP, channel.as_ref());
        assert_eq!(outcome.sketch.version, 1);
        let transcript = channel.transcript();
        assert!(transcript
            .iter()
            .any(|(q, _)| q.contains("could not map that correction")));
    }

    #[test]
    fn unambiguous_query_asks_nothing() {
        let channel = ScriptedChannel::new(["OK"]);
        let outcome = parser().parse("sort films by release year", channel.as_ref());
        assert!(outcome.clarifications.is_empty());
        // Still produces a well-formed (if generic) sketch.
        assert!(!outcome.sketch.is_empty());
    }

    #[test]
    fn sketch_render_shows_numbered_steps() {
        let channel = ScriptedChannel::new(["uncommon scenes", "OK"]);
        let outcome = parser().parse(FLAGSHIP, channel.as_ref());
        let rendered = outcome.sketch.render();
        assert!(rendered.contains("1. "));
        assert!(rendered.contains("8. "));
        assert!(rendered.contains("Query sketch (v1)"));
    }
}
