//! KathDB's query parser with human-AI verification (§2.1, §5).
//!
//! NL query → [`QueryIntent`] → interactive clarification/correction →
//! [`QuerySketch`] → [`LogicalPlan`] (function signatures in the exact
//! Fig. 3 JSON layout) → agentic [`PlanVerifier`] with its tool user.

#![warn(missing_docs)]

mod intent;
mod logical;
mod sketch;
mod verifier;

pub use intent::{
    extract_intent, is_approval, parse_correction, ConceptIntent, ConceptUse, ExtraFactor,
    Modality, QueryIntent,
};
pub use logical::{generate_logical_plan, noun_form, LogicalNode, LogicalPlan};
pub use sketch::{generate_sketch, NlParser, ParseOutcome, QuerySketch, SketchStep, StepTag};
pub use verifier::{Check, PlanVerifier, VerifierReport};
