//! The logical plan generator.
//!
//! "Given a query sketch as input, the logical plan generator uses the
//! system catalog as additional context and expands each step … into a
//! logical plan node equipped with a function signature" (§2.1). Nodes are
//! emitted in the exact JSON layout of Fig. 3.

use crate::sketch::{QuerySketch, StepTag};
use kath_fao::FunctionSignature;
use kath_json::Json;

/// One logical-plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalNode {
    /// The function signature (name, description, inputs, output).
    pub signature: FunctionSignature,
    /// The sketch tag this node implements.
    pub tag: StepTag,
    /// Whether the implementation is pre-written rather than generated
    /// (the view-population function in the prototype, §6).
    pub prewritten: bool,
}

/// A logical plan: nodes in topological (sketch) order.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalPlan {
    /// The nodes.
    pub nodes: Vec<LogicalNode>,
}

impl LogicalPlan {
    /// Nodes whose bodies must be generated (excludes pre-written ones).
    pub fn generated_nodes(&self) -> impl Iterator<Item = &LogicalNode> {
        self.nodes.iter().filter(|n| !n.prewritten)
    }

    /// Finds a node by function name.
    pub fn node(&self, name: &str) -> Option<&LogicalNode> {
        self.nodes.iter().find(|n| n.signature.name == name)
    }

    /// Indices of the nodes whose outputs `node` consumes.
    pub fn dependencies(&self, idx: usize) -> Vec<usize> {
        let inputs = &self.nodes[idx].signature.inputs;
        self.nodes
            .iter()
            .enumerate()
            .filter(|(j, n)| *j != idx && inputs.contains(&n.signature.output))
            .map(|(j, _)| j)
            .collect()
    }

    /// The Fig. 3 JSON rendering: an array of signature objects in the
    /// exact layout.
    pub fn to_json(&self) -> Json {
        Json::Array(self.nodes.iter().map(|n| n.signature.to_json()).collect())
    }

    /// The name of the final output table.
    pub fn final_output(&self) -> Option<&str> {
        self.nodes.last().map(|n| n.signature.output.as_str())
    }
}

/// Canonical noun form of a subjective term ("exciting" → "excitement"),
/// used to derive paper-style function names like `gen_excitement_score`.
pub fn noun_form(term: &str) -> String {
    match term {
        "exciting" => "excitement".to_string(),
        "boring" => "boring".to_string(),
        "scary" => "scariness".to_string(),
        "funny" => "funniness".to_string(),
        other => other.to_string(),
    }
}

/// Expands an approved sketch into a logical plan. Table names follow the
/// conventions of the flagship pipeline (`movie_table`, the multimodal view
/// names, and intermediate outputs chained step to step).
pub fn generate_logical_plan(sketch: &QuerySketch, base_table: &str) -> LogicalPlan {
    let mut nodes: Vec<LogicalNode> = Vec::new();
    // The most recent table carrying per-film scores (threads the chain).
    let mut score_table = String::new();
    // The table carrying the visual flag.
    let mut flag_table = String::new();
    let mut flag_term = String::new();

    for step in &sketch.steps {
        match &step.tag {
            StepTag::PopulateViews => {
                nodes.push(LogicalNode {
                    signature: FunctionSignature::new(
                        "populate_views",
                        step.text.clone(),
                        vec![],
                        "multimodal_views",
                    ),
                    tag: step.tag.clone(),
                    prewritten: true,
                });
            }
            StepTag::SelectColumns => {
                nodes.push(LogicalNode {
                    signature: FunctionSignature::new(
                        "select_movie_columns",
                        step.text.clone(),
                        vec![base_table.to_string()],
                        "movie_columns",
                    ),
                    tag: step.tag.clone(),
                    prewritten: false,
                });
            }
            StepTag::JoinTextView => {
                nodes.push(LogicalNode {
                    signature: FunctionSignature::new(
                        "join_text_view",
                        step.text.clone(),
                        vec!["movie_columns".to_string(), "text_texts".to_string()],
                        "films_with_text",
                    ),
                    tag: step.tag.clone(),
                    prewritten: false,
                });
                score_table = "films_with_text".to_string();
            }
            StepTag::JoinImageView => {
                nodes.push(LogicalNode {
                    signature: FunctionSignature::new(
                        "join_image_view",
                        step.text.clone(),
                        vec!["movie_columns".to_string(), "scene_frames".to_string()],
                        "films_with_image_scene",
                    ),
                    tag: step.tag.clone(),
                    prewritten: false,
                });
            }
            StepTag::ConceptScore { term } => {
                let noun = noun_form(term);
                let output = format!("films_with_{noun}");
                nodes.push(LogicalNode {
                    signature: FunctionSignature::new(
                        format!("gen_{noun}_score"),
                        step.text.clone(),
                        vec![score_table.clone()],
                        output.clone(),
                    ),
                    tag: step.tag.clone(),
                    prewritten: false,
                });
                score_table = output;
            }
            StepTag::RecencyScore => {
                let output = "films_with_recency".to_string();
                nodes.push(LogicalNode {
                    signature: FunctionSignature::new(
                        "gen_recency_score",
                        step.text.clone(),
                        vec![score_table.clone()],
                        output.clone(),
                    ),
                    tag: step.tag.clone(),
                    prewritten: false,
                });
                score_table = output;
            }
            StepTag::CombineScores => {
                let output = "films_with_final_score".to_string();
                nodes.push(LogicalNode {
                    signature: FunctionSignature::new(
                        "combine_score",
                        step.text.clone(),
                        vec![score_table.clone()],
                        output.clone(),
                    ),
                    tag: step.tag.clone(),
                    prewritten: false,
                });
                score_table = output;
            }
            StepTag::VisualClassify { term } => {
                let output = format!("films_with_{term}_flag");
                nodes.push(LogicalNode {
                    signature: FunctionSignature::new(
                        format!("classify_{term}"),
                        step.text.clone(),
                        vec!["films_with_image_scene".to_string()],
                        output.clone(),
                    ),
                    tag: step.tag.clone(),
                    prewritten: false,
                });
                flag_table = output;
                flag_term = term.clone();
            }
            StepTag::FilterFlag { term, .. } => {
                let output = format!("films_{term}_only");
                nodes.push(LogicalNode {
                    signature: FunctionSignature::new(
                        format!("filter_{term}"),
                        step.text.clone(),
                        vec![flag_table.clone()],
                        output.clone(),
                    ),
                    tag: step.tag.clone(),
                    prewritten: false,
                });
                flag_table = output;
            }
            StepTag::JoinScores => {
                let output = "films_scored_and_flagged".to_string();
                nodes.push(LogicalNode {
                    signature: FunctionSignature::new(
                        "join_score_tables",
                        step.text.clone(),
                        vec![score_table.clone(), flag_table.clone()],
                        output.clone(),
                    ),
                    tag: step.tag.clone(),
                    prewritten: false,
                });
                score_table = output;
            }
            StepTag::FinalRank => {
                // With a join_score_tables node upstream the scores already
                // carry the flag; otherwise rank joins both sides itself.
                let joined = nodes
                    .iter()
                    .any(|n| n.signature.name == "join_score_tables");
                let inputs = if joined || flag_table.is_empty() {
                    vec![score_table.clone()]
                } else {
                    vec![score_table.clone(), flag_table.clone()]
                };
                nodes.push(LogicalNode {
                    signature: FunctionSignature::new(
                        "rank_films",
                        step.text.clone(),
                        inputs,
                        "final_ranked_films",
                    ),
                    tag: step.tag.clone(),
                    prewritten: false,
                });
            }
        }
        let _ = &flag_term; // reserved for multi-flag queries
    }

    LogicalPlan { nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intent::extract_intent;
    use crate::sketch::generate_sketch;
    use kath_model::{SimLlm, TokenMeter};

    const FLAGSHIP: &str = "Sort the given films in the table by how exciting \
                            they are, but the poster should be 'boring'";

    fn plan_with_recency() -> LogicalPlan {
        let llm = SimLlm::new(42, TokenMeter::new());
        let mut intent = extract_intent(FLAGSHIP, &llm);
        intent.concepts[0].clarification =
            Some("scenes that are uncommon in real life".to_string());
        intent
            .extra_factors
            .push(crate::intent::ExtraFactor::Recency);
        let sketch = generate_sketch(&intent, &llm, 2);
        generate_logical_plan(&sketch, "movie_table")
    }

    #[test]
    fn eleven_step_sketch_yields_papers_ten_generated_nodes() {
        let plan = plan_with_recency();
        // §6: view population is pre-written, "leaving 10 remaining logical
        // plan nodes".
        assert_eq!(plan.nodes.len(), 11);
        assert_eq!(plan.generated_nodes().count(), 10);
        let names: Vec<&str> = plan
            .generated_nodes()
            .map(|n| n.signature.name.as_str())
            .collect();
        assert_eq!(
            names,
            vec![
                "select_movie_columns",
                "join_text_view",
                "join_image_view",
                "gen_excitement_score",
                "gen_recency_score",
                "combine_score",
                "classify_boring",
                "filter_boring",
                "join_score_tables",
                "rank_films",
            ]
        );
    }

    #[test]
    fn classify_boring_matches_fig3_signature() {
        let plan = plan_with_recency();
        let node = plan.node("classify_boring").unwrap();
        assert_eq!(
            node.signature.inputs,
            vec!["films_with_image_scene".to_string()]
        );
        assert_eq!(node.signature.output, "films_with_boring_flag");
        assert!(node.signature.description.contains("boring"));
    }

    #[test]
    fn dependencies_follow_table_flow() {
        let plan = plan_with_recency();
        let rank_idx = plan.nodes.len() - 1;
        let deps = plan.dependencies(rank_idx);
        // rank_films depends on join_score_tables.
        assert_eq!(deps.len(), 1);
        assert_eq!(plan.nodes[deps[0]].signature.name, "join_score_tables");
        // join_score_tables depends on combine_score and filter_boring.
        let jst = plan
            .nodes
            .iter()
            .position(|n| n.signature.name == "join_score_tables")
            .unwrap();
        let dep_names: Vec<&str> = plan
            .dependencies(jst)
            .into_iter()
            .map(|i| plan.nodes[i].signature.name.as_str())
            .collect();
        assert!(dep_names.contains(&"combine_score"));
        assert!(dep_names.contains(&"filter_boring"));
    }

    #[test]
    fn json_rendering_is_an_array_of_exact_layout_nodes() {
        let plan = plan_with_recency();
        let j = plan.to_json();
        let arr = j.as_array().unwrap();
        assert_eq!(arr.len(), 11);
        for node in arr {
            let keys: Vec<&str> = node.as_object().unwrap().keys().collect();
            assert_eq!(keys, vec!["name", "description", "inputs", "output"]);
        }
    }

    #[test]
    fn plan_without_recency_has_single_assembly_step() {
        let llm = SimLlm::new(42, TokenMeter::new());
        let mut intent = extract_intent(FLAGSHIP, &llm);
        intent.concepts[0].clarification = Some("uncommon scenes".to_string());
        let sketch = generate_sketch(&intent, &llm, 1);
        let plan = generate_logical_plan(&sketch, "movie_table");
        assert!(plan.node("join_score_tables").is_none());
        let rank = plan.node("rank_films").unwrap();
        assert_eq!(rank.signature.inputs.len(), 2);
        assert_eq!(plan.final_output(), Some("final_ranked_films"));
    }

    #[test]
    fn noun_forms() {
        assert_eq!(noun_form("exciting"), "excitement");
        assert_eq!(noun_form("scary"), "scariness");
        assert_eq!(noun_form("weird"), "weird");
    }
}
