//! After a query runs, the materialized multimodal views are ordinary
//! relations: this test drives the SQL engine over them — the "systematic,
//! cost-based evaluation of cross-modal user queries" the unified relational
//! layer promises (§1).

use kath_data::mmqa_small;
use kath_model::ScriptedChannel;
use kath_storage::Value;
use kathdb::KathDB;

fn db_after_flagship() -> KathDB {
    let mut db = KathDB::new(42);
    db.load_corpus(&mmqa_small()).unwrap();
    let channel = ScriptedChannel::new(["uncommon scenes", "OK"]);
    db.query(
        "Sort the given films in the table by how exciting they are, \
         but the poster should be 'boring'",
        channel.as_ref(),
    )
    .unwrap();
    db
}

#[test]
fn scene_objects_view_is_sql_queryable() {
    let db = db_after_flagship();
    let mut catalog = db.context().catalog.snapshot().catalog().clone();
    // Count detected objects per poster.
    let t = kath_sql::execute(
        &mut catalog,
        "SELECT vid, COUNT(*) AS objects FROM scene_objects GROUP BY vid ORDER BY vid",
        "objects_per_poster",
    )
    .unwrap();
    // The detector is noisy: low-saliency objects on boring posters may go
    // undetected entirely, so some vids can be absent from the grouped view.
    assert!((4..=6).contains(&t.len()), "{}", t.render());
    // Vivid posters (4 = Night Chase) carry more detected objects than any
    // boring one.
    let night_chase = t.find("vid", &Value::Int(4)).unwrap().unwrap();
    let nc = t.cell(night_chase, "objects").unwrap().as_int().unwrap();
    assert!(nc >= 3, "night chase should be object-rich, got {nc}");
    for boring_vid in [1i64, 2, 3, 6] {
        if let Some(row) = t.find("vid", &Value::Int(boring_vid)).unwrap() {
            let n = t.cell(row, "objects").unwrap().as_int().unwrap();
            assert!(n < nc, "boring poster {boring_vid} has {n} >= {nc}");
        }
    }
}

#[test]
fn cross_modal_join_movies_to_detected_weapons() {
    let db = db_after_flagship();
    let mut catalog = db.context().catalog.snapshot().catalog().clone();
    // Which movies' posters depict a weapon? A cross-modal join: base table
    // × scene-graph view.
    let t = kath_sql::execute(
        &mut catalog,
        "SELECT DISTINCT title FROM movie_table \
         JOIN scene_objects ON movie_table.vid = scene_objects.vid \
         WHERE cid = 'weapon' ORDER BY title",
        "weapon_movies",
    )
    .unwrap();
    let titles: Vec<&str> = t.rows().iter().map(|r| r[0].as_str().unwrap()).collect();
    // Exactly the vivid-poster movies (Night Chase, Garden Letters).
    assert!(titles.contains(&"Night Chase"), "{titles:?}");
    assert!(!titles.contains(&"Quiet Days"), "{titles:?}");
}

#[test]
fn text_entities_view_finds_the_director() {
    let db = db_after_flagship();
    let mut catalog = db.context().catalog.snapshot().catalog().clone();
    // The Guilty by Suspicion plot mentions Irwin Winkler; the text graph
    // resolves him as a person entity with a director_of relationship.
    let people = kath_sql::execute(
        &mut catalog,
        "SELECT did, COUNT(*) AS n FROM text_entities WHERE cid = 'person' GROUP BY did",
        "people_per_doc",
    )
    .unwrap();
    let guilty = people.find("did", &Value::Int(1)).unwrap();
    assert!(guilty.is_some(), "{}", people.render());

    let rels = kath_sql::execute(
        &mut catalog,
        "SELECT * FROM text_relationships WHERE pid = 'director_of'",
        "director_rels",
    )
    .unwrap();
    assert!(
        !rels.is_empty(),
        "director_of relationship must be extracted"
    );
    assert_eq!(rels.cell(0, "did").unwrap(), &Value::Int(1));
}

#[test]
fn mentions_have_valid_spans_into_texts() {
    let db = db_after_flagship();
    let catalog = &db.context().catalog;
    let mentions = catalog.get("text_mentions").unwrap();
    let texts = catalog.get("text_texts").unwrap();
    for m in mentions.rows() {
        let did = &m[0];
        let (s1, s2) = (
            m[5].as_int().unwrap() as usize,
            m[6].as_int().unwrap() as usize,
        );
        let doc_row = texts.find("did", did).unwrap().expect("doc exists");
        let chars = texts.cell(doc_row, "chars").unwrap().as_str().unwrap();
        assert!(
            s2 <= chars.len() && s1 < s2,
            "span [{s1},{s2}) out of range"
        );
        // Spans cut on character boundaries and are non-empty.
        assert!(!chars[s1..s2].trim().is_empty());
    }
}

#[test]
fn intermediate_tables_are_inspectable() {
    let db = db_after_flagship();
    let catalog = &db.context().catalog;
    // The paper's explainability story depends on every intermediate being
    // a materialized view the user can look at.
    for name in [
        "movie_columns",
        "films_with_text",
        "films_with_image_scene",
        "films_with_excitement",
        "films_with_boring_flag",
        "films_boring_only",
        "final_ranked_films",
    ] {
        assert!(catalog.contains(name), "missing intermediate '{name}'");
        assert!(
            catalog.get(name).unwrap().schema().arity() > 0,
            "degenerate schema for '{name}'"
        );
    }
}
