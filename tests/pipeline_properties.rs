//! Property tests over the full pipeline: for randomized corpora, the
//! system-level invariants of KathDB must hold — results are subsets of the
//! input ranked by score, lineage traces terminate at external roots, and
//! the boring filter stays faithful to planted ground truth.

use kath_data::{generate_corpus, CorpusSpec};
use kath_model::ScriptedChannel;
use kathdb::KathDB;
use proptest::prelude::*;

const FLAGSHIP: &str = "Sort the given films in the table by how exciting \
                        they are, but the poster should be 'boring'";

proptest! {
    // End-to-end runs are expensive; a handful of random corpora per test
    // run is enough to sweep the parameter space over CI history.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn pipeline_invariants_hold_for_random_corpora(
        seed in 0u64..1000,
        movies in 8usize..25,
        boring_fraction in 0.3f64..0.8,
    ) {
        let corpus = generate_corpus(&CorpusSpec {
            movies,
            exciting_fraction: 0.5,
            boring_fraction,
            heic_fraction: 0.0,
            seed,
        });
        let mut db = KathDB::new(42);
        db.load_corpus(&corpus).unwrap();
        let channel = ScriptedChannel::new(["uncommon scenes", "OK"]);
        let result = db.query(FLAGSHIP, channel.as_ref()).unwrap();
        let display = result.display_table();

        // 1. Every result row is one of the input movies, at most once.
        let tidx = display.schema().index_of("title").unwrap();
        let mut seen = std::collections::HashSet::new();
        for row in display.rows() {
            let title = row[tidx].render();
            prop_assert!(
                corpus.truth.iter().any(|t| t.title == title),
                "unknown title {title}"
            );
            prop_assert!(seen.insert(title), "duplicate result row");
        }

        // 2. Scores are sorted non-increasing.
        if let Some(sidx) = display.schema().index_of("excitement_score")
            .or_else(|| display.schema().index_of("final_score"))
        {
            let scores: Vec<f64> = display
                .rows()
                .iter()
                .map(|r| r[sidx].as_f64().unwrap())
                .collect();
            for w in scores.windows(2) {
                prop_assert!(w[0] >= w[1]);
            }
            // 3. Scores are valid probabilities.
            for s in scores {
                prop_assert!((0.0..=1.0).contains(&s));
            }
        }

        // 4. Filter accuracy vs planted truth stays high (the optimizer may
        //    trade a little accuracy for cost; it must not collapse).
        let got: Vec<String> = display.rows().iter().map(|r| r[tidx].render()).collect();
        let correct = corpus
            .truth
            .iter()
            .filter(|t| got.contains(&t.title) == t.boring_poster)
            .count();
        prop_assert!(
            correct as f64 / corpus.truth.len() as f64 >= 0.8,
            "accuracy collapsed: {correct}/{}", corpus.truth.len()
        );

        // 5. Every result tuple's lineage trace terminates at an external
        //    root within bounded depth.
        if let Some(lidx) = display.schema().index_of("lid") {
            for row in display.rows() {
                let lid = row[lidx].as_int().unwrap();
                let trace = db.context().lineage.trace(lid).unwrap();
                prop_assert!(trace.depth() <= 12);
                // A root edge (no parent) is reachable.
                fn has_root(t: &kath_lineage::DerivationTrace) -> bool {
                    t.edges.iter().any(|e| e.parent_lid.is_none())
                        || t.parents.iter().any(has_root)
                }
                prop_assert!(has_root(&trace), "trace never reached a root");
            }
        }

        // 6. The function registry contains profiled versions for every
        //    physical node that ran.
        for node in &result.compile.physical.nodes {
            prop_assert!(db.registry().contains(&node.func_id));
        }
    }

    #[test]
    fn token_cost_is_monotone_in_corpus_size(seed in 0u64..100) {
        let mut totals = Vec::new();
        for movies in [6usize, 18] {
            let corpus = generate_corpus(&CorpusSpec {
                movies,
                seed,
                ..Default::default()
            });
            let mut db = KathDB::new(42);
            db.load_corpus(&corpus).unwrap();
            let channel = ScriptedChannel::new(["uncommon scenes", "OK"]);
            db.query(FLAGSHIP, channel.as_ref()).unwrap();
            totals.push(db.token_usage().total());
        }
        prop_assert!(totals[1] > totals[0], "{totals:?}");
    }
}
