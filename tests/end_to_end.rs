//! Cross-crate integration tests: the complete flagship pipeline of §6,
//! checked against every artifact the paper's figures show.

use kath_data::mmqa_small;
use kath_json::{parse, to_string};
use kath_model::ScriptedChannel;
use kath_parser::StepTag;
use kath_storage::Value;
use kathdb::{KathDB, QueryResult};

const FLAGSHIP: &str = "Sort the given films in the table by how exciting \
                        they are, but the poster should be 'boring'";

fn run_flagship() -> (KathDB, QueryResult, std::sync::Arc<ScriptedChannel>) {
    let mut db = KathDB::new(42);
    db.load_corpus(&mmqa_small()).unwrap();
    let channel = ScriptedChannel::new([
        "The movie plot contains scenes that are uncommon in real life",
        "Oh I prefer a more recent movie as well when scoring",
        "OK",
    ]);
    let result = db.query(FLAGSHIP, channel.as_ref()).unwrap();
    (db, result, channel)
}

#[test]
fn fig4_interaction_clarifies_then_corrects() {
    let (_db, result, channel) = run_flagship();
    let transcript = channel.transcript();
    // The parser asked the paper's exact clarification question first.
    assert!(transcript[0]
        .0
        .contains("What does 'exciting' mean in this context?"));
    assert_eq!(
        transcript[0].1,
        "The movie plot contains scenes that are uncommon in real life"
    );
    // Then showed a sketch and received the recency correction.
    assert!(transcript[1].0.contains("Query sketch (v1)"));
    assert!(transcript[1].1.contains("recent"));
    // The revised sketch was approved with an explicit OK (§5).
    assert!(transcript[2].0.contains("Query sketch (v2)"));
    assert_eq!(transcript[2].1, "OK");
    // 8 steps grew to 11 (§6).
    assert_eq!(result.parse.history[0].len(), 8);
    assert_eq!(result.parse.sketch.len(), 11);
}

#[test]
fn fig3_logical_plan_nodes_use_the_exact_json_layout() {
    let (_db, result, _) = run_flagship();
    // §6: the pre-written view population leaves 10 generated nodes.
    assert_eq!(result.logical.nodes.len(), 11);
    assert_eq!(result.logical.generated_nodes().count(), 10);
    let classify = result.logical.node("classify_boring").unwrap();
    let json = to_string(&classify.signature.to_json());
    // Keys in the exact order, ingestible without post-processing.
    let reparsed = parse(&json).unwrap();
    let keys: Vec<&str> = reparsed.as_object().unwrap().keys().collect();
    assert_eq!(keys, vec!["name", "description", "inputs", "output"]);
    assert_eq!(
        reparsed.get("inputs").unwrap().as_array().unwrap()[0].as_str(),
        Some("films_with_image_scene")
    );
    assert_eq!(
        reparsed.get("output").unwrap().as_str(),
        Some("films_with_boring_flag")
    );
}

#[test]
fn fig6_final_ranking_and_flags() {
    let (_db, result, _) = run_flagship();
    let display = result.display_table();
    // Only boring-poster films survive; vivid ones are filtered.
    let titles: Vec<&str> = display
        .rows()
        .iter()
        .map(|r| {
            r[display.schema().index_of("title").unwrap()]
                .as_str()
                .unwrap()
        })
        .collect();
    assert!(!titles.contains(&"Night Chase"), "{titles:?}");
    assert!(!titles.contains(&"Garden Letters"), "{titles:?}");
    // Top two exactly as in Fig. 6.
    assert_eq!(titles[0], "Guilty by Suspicion");
    assert_eq!(titles[1], "Clean and Sober");
    // Scores strictly descending; all boring flags true.
    let sidx = display.schema().index_of("final_score").unwrap();
    let scores: Vec<f64> = display
        .rows()
        .iter()
        .map(|r| r[sidx].as_f64().unwrap())
        .collect();
    for w in scores.windows(2) {
        assert!(w[0] >= w[1]);
    }
    for row in display.rows() {
        assert_eq!(
            row[display.schema().index_of("boring").unwrap()],
            Value::Bool(true)
        );
    }
}

#[test]
fn accuracy_against_planted_ground_truth() {
    // Something the paper could not measure: with planted labels, the
    // pipeline's boring filter must agree with the ground truth.
    let corpus = mmqa_small();
    let (_db, result, _) = run_flagship();
    let display = result.display_table();
    let expected: Vec<&str> = corpus
        .truth
        .iter()
        .filter(|t| t.boring_poster)
        .map(|t| t.title.as_str())
        .collect();
    assert_eq!(display.len(), expected.len());
    for t in &corpus.truth {
        let present = display
            .rows()
            .iter()
            .any(|r| r[display.schema().index_of("title").unwrap()].as_str() == Some(&t.title));
        assert_eq!(present, t.boring_poster, "{}", t.title);
    }
    // Ranking respects ground-truth excitement: every exciting plot in the
    // result ranks above every calm plot.
    let tidx = display.schema().index_of("title").unwrap();
    let rank_of = |title: &str| {
        display
            .rows()
            .iter()
            .position(|r| r[tidx].as_str() == Some(title))
    };
    for exciting in corpus
        .truth
        .iter()
        .filter(|t| t.exciting_plot && t.boring_poster)
    {
        for calm in corpus
            .truth
            .iter()
            .filter(|t| !t.exciting_plot && t.boring_poster)
        {
            let (Some(re), Some(rc)) = (rank_of(&exciting.title), rank_of(&calm.title)) else {
                continue;
            };
            assert!(
                re < rc,
                "{} (exciting) should outrank {} (calm)",
                exciting.title,
                calm.title
            );
        }
    }
}

#[test]
fn lineage_trace_spans_all_narrow_operators() {
    let (db, result, _) = run_flagship();
    let lid = result.top_lid().unwrap();
    let trace = db.context().lineage.trace(lid).unwrap();
    let funcs: Vec<String> = trace.functions().into_iter().map(|(f, _)| f).collect();
    for expected in [
        "combine_score",
        "gen_recency_score",
        "gen_excitement_score",
        "populate_text_views",
    ] {
        assert!(funcs.contains(&expected.to_string()), "{funcs:?}");
    }
    // Trace terminates at an external root.
    assert!(trace.depth() >= 5);
}

#[test]
fn sketch_tags_cover_the_full_pipeline() {
    let (_db, result, _) = run_flagship();
    let tags: Vec<&StepTag> = result.parse.sketch.steps.iter().map(|s| &s.tag).collect();
    assert!(matches!(tags[0], StepTag::PopulateViews));
    assert!(tags
        .iter()
        .any(|t| matches!(t, StepTag::ConceptScore { .. })));
    assert!(tags.iter().any(|t| matches!(t, StepTag::RecencyScore)));
    assert!(tags.iter().any(|t| matches!(t, StepTag::CombineScores)));
    assert!(tags
        .iter()
        .any(|t| matches!(t, StepTag::VisualClassify { .. })));
    assert!(tags.iter().any(|t| matches!(t, StepTag::FilterFlag { .. })));
    assert!(matches!(tags.last().unwrap(), StepTag::FinalRank));
}

#[test]
fn without_recency_correction_the_plan_is_smaller() {
    let mut db = KathDB::new(42);
    db.load_corpus(&mmqa_small()).unwrap();
    let channel = ScriptedChannel::new([
        "The movie plot contains scenes that are uncommon in real life",
        "OK",
    ]);
    let result = db.query(FLAGSHIP, channel.as_ref()).unwrap();
    assert_eq!(result.parse.sketch.len(), 8);
    assert!(result.logical.node("gen_recency_score").is_none());
    assert!(result.logical.node("combine_score").is_none());
    // Still ranks by excitement and filters boring posters.
    let display = result.display_table();
    assert!(display.len() >= 2);
    let tidx = display.schema().index_of("title").unwrap();
    assert_eq!(
        display.rows()[0][tidx].as_str(),
        Some("Guilty by Suspicion")
    );
}
