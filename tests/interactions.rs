//! Integration tests for the human-AI interaction paths: self-repair during
//! execution, semantic anomaly resolution, critic interventions, version
//! rollback, and function persistence across sessions.

use kath_data::{generate_corpus, mmqa_small, CorpusSpec};
use kath_fao::FunctionRegistry;
use kath_model::ScriptedChannel;
use kath_optimizer::CoderFaults;
use kathdb::KathDB;

const FLAGSHIP: &str = "Sort the given films in the table by how exciting \
                        they are, but the poster should be 'boring'";

#[test]
fn heic_corpus_triggers_repairs_and_still_answers() {
    let corpus = generate_corpus(&CorpusSpec {
        movies: 30,
        exciting_fraction: 0.5,
        boring_fraction: 0.6,
        heic_fraction: 0.15,
        seed: 5,
    });
    let heic_posters = corpus
        .images
        .iter()
        .filter(|i| !i.format.is_supported())
        .count();
    assert!(heic_posters > 0, "corpus must contain HEIC posters");

    let mut db = KathDB::new(42);
    db.load_corpus(&corpus).unwrap();
    let channel = ScriptedChannel::new(["uncommon and intense scenes", "OK"]);
    let result = db.query(FLAGSHIP, channel.as_ref()).unwrap();

    // At least one repair happened (scene population and/or classify).
    assert!(
        !result.exec.repairs.is_empty(),
        "expected repairs for HEIC posters"
    );
    for r in &result.exec.repairs {
        assert!(r.to_ver > r.from_ver);
        assert!(r.diagnosis.contains("conversion"), "{}", r.diagnosis);
    }
    // Repaired functions keep all versions (roll-back safety, §4).
    let repaired = &result.exec.repairs[0].func_id;
    assert!(db.registry().get(repaired).unwrap().versions.len() >= 2);
    // And the final result is highly faithful to the planted ground truth.
    // (Exactness is not guaranteed: the optimizer may legitimately pick a
    // cheaper vision model that trades a little accuracy for cost — the
    // very trade-off of §4.)
    let display = result.display_table();
    let tidx = display.schema().index_of("title").unwrap();
    let got: Vec<String> = display.rows().iter().map(|r| r[tidx].render()).collect();
    let correct = corpus
        .truth
        .iter()
        .filter(|t| got.contains(&t.title) == t.boring_poster)
        .count();
    let accuracy = correct as f64 / corpus.truth.len() as f64;
    assert!(accuracy >= 0.9, "filter accuracy {accuracy} too low");
}

#[test]
fn injected_reversed_recency_is_caught_by_the_critic() {
    let mut db = KathDB::new(42);
    db.compile_options.faults = CoderFaults {
        reversed_recency: true,
    };
    db.load_corpus(&mmqa_small()).unwrap();
    let channel = ScriptedChannel::new([
        "The movie plot contains scenes that are uncommon in real life",
        "Oh I prefer a more recent movie as well when scoring",
        "OK",
    ]);
    let result = db.query(FLAGSHIP, channel.as_ref()).unwrap();
    // The critic flagged and fixed the direction before execution.
    assert_eq!(result.compile.critiques.len(), 1);
    assert_eq!(result.compile.critiques[0].func_id, "gen_recency_score");
    // So the final ranking is still correct: 1991 over 1988.
    let display = result.display_table();
    assert_eq!(
        display.cell(0, "title").unwrap().as_str(),
        Some("Guilty by Suspicion")
    );
    // Both the faulty and the corrected version live in the registry.
    let entry = db.registry().get("gen_recency_score").unwrap();
    assert_eq!(entry.versions.len(), 2);
    assert!(entry.versions[1].note.starts_with("critic:"));
}

#[test]
fn registry_round_trips_across_sessions() {
    let dir = std::env::temp_dir().join("kathdb_it_persist");
    let path = dir.join("functions.json");
    {
        let mut db = KathDB::new(42);
        db.load_corpus(&mmqa_small()).unwrap();
        let channel = ScriptedChannel::new(["uncommon scenes", "OK"]);
        db.query(FLAGSHIP, channel.as_ref()).unwrap();
        db.save_functions(&path).unwrap();
    }
    // A later "session" reloads every generated function with versions,
    // profiles, and notes intact.
    let loaded = FunctionRegistry::load(&path).unwrap();
    for f in [
        "select_movie_columns",
        "join_text_view",
        "join_image_view",
        "gen_excitement_score",
        "classify_boring",
        "filter_boring",
        "rank_films",
    ] {
        assert!(loaded.contains(f), "missing {f}");
    }
    let classify = loaded.get("classify_boring").unwrap();
    assert!(classify.active_version().profile.is_some());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn rollback_restores_an_earlier_implementation() {
    let mut db = KathDB::new(42);
    db.load_corpus(&mmqa_small()).unwrap();
    let channel = ScriptedChannel::new(["uncommon scenes", "OK"]);
    db.query(FLAGSHIP, channel.as_ref()).unwrap();

    // Simulate a bad manual edit: add a junk version, then roll back.
    let before = db.registry().get("filter_boring").unwrap().active;
    // (Rollback is exercised through the registry API the facade exposes in
    // spirit; here we clone, mutate, and verify semantics.)
    let mut reg = db.registry().clone();
    let v2 = reg
        .add_version(
            "filter_boring",
            kath_fao::FunctionBody::FilterExpr {
                input: "films_with_boring_flag".into(),
                predicate: "boring = FALSE".into(), // wrong on purpose
            },
            "bad manual edit",
        )
        .unwrap();
    assert_eq!(reg.get("filter_boring").unwrap().active, v2);
    reg.rollback("filter_boring", before).unwrap();
    assert_eq!(reg.get("filter_boring").unwrap().active, before);
    // The bad version is preserved for audit.
    assert!(reg.get("filter_boring").unwrap().version(v2).is_some());
}

#[test]
fn token_budget_grows_with_corpus_size() {
    let mut small_db = KathDB::new(42);
    small_db
        .load_corpus(&generate_corpus(&CorpusSpec {
            movies: 10,
            ..Default::default()
        }))
        .unwrap();
    let channel = ScriptedChannel::new(["uncommon scenes", "OK"]);
    small_db.query(FLAGSHIP, channel.as_ref()).unwrap();
    let small_tokens = small_db.token_usage().total();

    let mut big_db = KathDB::new(42);
    big_db
        .load_corpus(&generate_corpus(&CorpusSpec {
            movies: 60,
            ..Default::default()
        }))
        .unwrap();
    let channel = ScriptedChannel::new(["uncommon scenes", "OK"]);
    big_db.query(FLAGSHIP, channel.as_ref()).unwrap();
    let big_tokens = big_db.token_usage().total();

    assert!(
        big_tokens > small_tokens * 2,
        "token cost must scale with data: small={small_tokens} big={big_tokens}"
    );
}

#[test]
fn determinism_same_seed_same_answer() {
    let run = || {
        let mut db = KathDB::new(123);
        db.load_corpus(&mmqa_small()).unwrap();
        let channel = ScriptedChannel::new(["uncommon scenes", "OK"]);
        let r = db.query(FLAGSHIP, channel.as_ref()).unwrap();
        r.display_table()
            .rows()
            .iter()
            .map(|row| row[1].render())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
