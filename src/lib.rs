//! Workspace umbrella crate for KathDB.
//!
//! This crate exists to host the cross-crate integration tests in `tests/`
//! and the runnable examples in `examples/`. The public API lives in the
//! [`kathdb`] facade crate, re-exported here for convenience.

pub use kathdb::*;
